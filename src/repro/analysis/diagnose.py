"""Differential run diagnosis: *why* is run B worse than run A?

``compare`` (:func:`repro.obs.manifest.compare_manifests`) answers
*whether* metrics moved; this module answers *what to blame*.  Given
two runs' artifacts — :class:`~repro.obs.manifest.RunManifest` and
optionally :class:`~repro.obs.profiling.HostProfile` for each side —
:func:`diagnose_runs` builds a :class:`DiagnosisReport` that fuses four
signals into one ranked attribution list:

1. **Subsystem shifts** (profiles): per-subsystem attributed
   self-seconds and share deltas; a subsystem whose wall cost grew is
   the strongest causal lead, so these rank first.
2. **Anomaly differentials** (manifests): ``obs.anomaly.detected.*``
   counters — an anomaly kind that fired in one run but not the other
   names the degradation in watchdog vocabulary.
3. **Metric regressions** (manifests): the ordinary manifest diff,
   worst relative change first.
4. **Config drift** (manifest fingerprints): keys whose values differ,
   flagged loudly when the digests differ — an apples-to-oranges
   comparison should say so before anything else is believed.

Exposed as ``python -m repro.cli explain A B [--json]``; the report
schema is documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from ..obs.manifest import ManifestDiff, RunManifest, compare_manifests
from ..obs.profiling import HostProfile

__all__ = [
    "Attribution",
    "DiagnosisReport",
    "SubsystemShift",
    "diagnose_runs",
    "load_run_artifact",
]

#: Counter prefix the watchdog's per-kind detections land under.
_ANOMALY_PREFIX = "obs.anomaly.detected."

#: Fingerprint keys that never explain a regression.
_FINGERPRINT_IGNORED = ("digest",)

#: Metric regressions reported in the attribution ranking (the full
#: list stays available on :attr:`DiagnosisReport.metrics`).
_TOP_METRICS = 5


@dataclass(frozen=True)
class Attribution:
    """One ranked finding: a subject and why it is suspected."""

    #: What is blamed: a subsystem name, an anomaly kind, a metric
    #: name, or a config key.
    subject: str
    #: "subsystem" | "anomaly" | "metric" | "config".
    kind: str
    #: Human-readable evidence sentence.
    detail: str
    #: Sort key within the finding's kind (bigger = more suspicious):
    #: grown self-seconds, anomaly-count delta, or relative change.
    magnitude: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class SubsystemShift:
    """One subsystem's attributed-cost movement between two profiles."""

    subsystem: str
    base_seconds: float
    current_seconds: float
    base_share: float
    current_share: float

    @property
    def delta_seconds(self) -> float:
        return self.current_seconds - self.base_seconds

    @property
    def delta_share(self) -> float:
        return self.current_share - self.base_share

    def to_dict(self) -> Dict[str, Any]:
        record = dataclasses.asdict(self)
        record["delta_seconds"] = self.delta_seconds
        record["delta_share"] = self.delta_share
        return record


@dataclass
class DiagnosisReport:
    """Everything :func:`diagnose_runs` concluded, ranked."""

    #: False when the manifests describe different scenarios.
    fingerprint_matches: bool = True
    #: Config key -> (base value, current value), differing keys only.
    config_changes: Dict[str, Tuple[Any, Any]] = field(
        default_factory=dict)
    #: The plain manifest diff (None without both manifests).
    metrics: Optional[ManifestDiff] = None
    #: Anomaly kind -> detection count, per side.
    anomalies_base: Dict[str, int] = field(default_factory=dict)
    anomalies_current: Dict[str, int] = field(default_factory=dict)
    #: Per-subsystem profile movement (empty without both profiles).
    subsystem_shifts: List[SubsystemShift] = field(default_factory=list)
    #: Wall-clock ratio current/base (None without both profiles).
    slowdown: Optional[float] = None
    #: Ranked findings, most suspicious first.
    attributions: List[Attribution] = field(default_factory=list)

    def top_attribution(self) -> Optional[Attribution]:
        """The single most suspicious finding, if any."""
        return self.attributions[0] if self.attributions else None

    def to_dict(self) -> Dict[str, Any]:
        metrics = None
        if self.metrics is not None:
            metrics = {
                "regressions": [dataclasses.asdict(e)
                                for e in self.metrics.regressions],
                "improvements": [dataclasses.asdict(e)
                                 for e in self.metrics.improvements],
                "unchanged": self.metrics.unchanged,
                "added": list(self.metrics.added),
                "removed": list(self.metrics.removed),
            }
        return {
            "fingerprint_matches": self.fingerprint_matches,
            "config_changes": {
                key: {"base": base, "current": current}
                for key, (base, current) in self.config_changes.items()
            },
            "metrics": metrics,
            "anomalies": {
                "base": dict(self.anomalies_base),
                "current": dict(self.anomalies_current),
            },
            "subsystem_shifts": [shift.to_dict()
                                 for shift in self.subsystem_shifts],
            "slowdown": self.slowdown,
            "attributions": [a.to_dict() for a in self.attributions],
        }

    def format(self) -> str:
        """The human-readable report."""
        lines: List[str] = []
        if not self.fingerprint_matches:
            lines.append(
                "WARNING: different config fingerprints — the runs are "
                "not the same scenario; config drift is listed below")
        if self.config_changes:
            lines.append("config changes:")
            for key, (base, current) in sorted(
                    self.config_changes.items()):
                lines.append(f"  {key}: {base!r} -> {current!r}")
        if self.slowdown is not None:
            lines.append(f"wall clock: {self.slowdown:.2f}x base")
        if self.subsystem_shifts:
            lines.append("subsystem shifts (attributed self-seconds):")
            for shift in self.subsystem_shifts:
                lines.append(
                    f"  {shift.subsystem}: "
                    f"{shift.base_seconds:.3f}s -> "
                    f"{shift.current_seconds:.3f}s "
                    f"(share {shift.base_share * 100:.1f}% -> "
                    f"{shift.current_share * 100:.1f}%)")
        if self.anomalies_base or self.anomalies_current:
            lines.append("anomalies (base -> current):")
            for kind in sorted(set(self.anomalies_base)
                               | set(self.anomalies_current)):
                lines.append(
                    f"  {kind}: {self.anomalies_base.get(kind, 0)} -> "
                    f"{self.anomalies_current.get(kind, 0)}")
        if self.metrics is not None:
            lines.append(
                f"metrics: {len(self.metrics.regressions)} "
                f"regression(s), {len(self.metrics.improvements)} "
                f"improvement(s), {self.metrics.unchanged} within "
                "threshold")
        if self.attributions:
            lines.append("attribution (most suspicious first):")
            for rank, attribution in enumerate(self.attributions, 1):
                lines.append(f"  {rank}. [{attribution.kind}] "
                             f"{attribution.subject}: "
                             f"{attribution.detail}")
        else:
            lines.append("no differences worth attributing")
        return "\n".join(lines)


def _anomaly_counts(manifest: Optional[RunManifest]) -> Dict[str, int]:
    if manifest is None:
        return {}
    return {
        name[len(_ANOMALY_PREFIX):]: int(value)
        for name, value in manifest.counters.items()
        if name.startswith(_ANOMALY_PREFIX)
    }


def _config_changes(base: RunManifest, current: RunManifest,
                    ) -> Dict[str, Tuple[Any, Any]]:
    changes: Dict[str, Tuple[Any, Any]] = {}
    keys = set(base.fingerprint) | set(current.fingerprint)
    for key in sorted(keys):
        if key in _FINGERPRINT_IGNORED:
            continue
        before = base.fingerprint.get(key)
        after = current.fingerprint.get(key)
        if before != after:
            changes[key] = (before, after)
    return changes


def _subsystem_shifts(base: HostProfile, current: HostProfile,
                      ) -> List[SubsystemShift]:
    def seconds_by_subsystem(profile: HostProfile) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for scope in profile.scopes:
            totals[scope.subsystem] = (
                totals.get(scope.subsystem, 0.0) + scope.self_seconds)
        return totals

    base_seconds = seconds_by_subsystem(base)
    current_seconds = seconds_by_subsystem(current)
    base_shares = base.shares()
    current_shares = current.shares()
    shifts = [
        SubsystemShift(
            subsystem=subsystem,
            base_seconds=base_seconds.get(subsystem, 0.0),
            current_seconds=current_seconds.get(subsystem, 0.0),
            base_share=base_shares.get(subsystem, 0.0),
            current_share=current_shares.get(subsystem, 0.0),
        )
        for subsystem in sorted(set(base_seconds) | set(current_seconds))
    ]
    shifts.sort(key=lambda s: -s.delta_seconds)
    return shifts


def diagnose_runs(
    base_manifest: Optional[RunManifest] = None,
    current_manifest: Optional[RunManifest] = None,
    base_profile: Optional[HostProfile] = None,
    current_profile: Optional[HostProfile] = None,
    threshold: float = 0.10,
) -> DiagnosisReport:
    """Build the differential diagnosis from whatever artifacts exist.

    Any subset of artifacts works — each signal degrades independently
    to absent — but at least one *pair* (both manifests, or both
    profiles) is required for a differential.
    """
    have_manifests = (base_manifest is not None
                      and current_manifest is not None)
    have_profiles = (base_profile is not None
                     and current_profile is not None)
    if not have_manifests and not have_profiles:
        raise ValueError(
            "diagnosis needs two manifests or two profiles")

    report = DiagnosisReport()
    attributions: List[Attribution] = []

    if have_profiles:
        report.subsystem_shifts = _subsystem_shifts(
            base_profile, current_profile)
        if base_profile.wall_seconds > 0:
            report.slowdown = (current_profile.wall_seconds
                               / base_profile.wall_seconds)
        for shift in report.subsystem_shifts:
            if shift.delta_seconds <= 0:
                continue
            growth = (shift.delta_seconds / shift.base_seconds * 100.0
                      if shift.base_seconds > 0 else float("inf"))
            growth_text = ("new" if growth == float("inf")
                           else f"+{growth:.0f}%")
            attributions.append(Attribution(
                subject=shift.subsystem, kind="subsystem",
                magnitude=shift.delta_seconds,
                detail=(
                    f"self time {shift.base_seconds:.3f}s -> "
                    f"{shift.current_seconds:.3f}s ({growth_text}), "
                    f"share {shift.base_share * 100:.1f}% -> "
                    f"{shift.current_share * 100:.1f}%"),
            ))

    if have_manifests:
        report.metrics = compare_manifests(
            base_manifest, current_manifest, threshold=threshold)
        report.fingerprint_matches = report.metrics.fingerprint_matches
        report.config_changes = _config_changes(
            base_manifest, current_manifest)
        report.anomalies_base = _anomaly_counts(base_manifest)
        report.anomalies_current = _anomaly_counts(current_manifest)
        anomaly_kinds = sorted(set(report.anomalies_base)
                               | set(report.anomalies_current))
        anomaly_attributions = []
        for kind in anomaly_kinds:
            before = report.anomalies_base.get(kind, 0)
            after = report.anomalies_current.get(kind, 0)
            if after == before:
                continue
            if after > before and before == 0:
                detail = (f"fired {after}x in current run only")
            elif after > before:
                detail = f"detections grew {before} -> {after}"
            else:
                detail = (f"fired {before}x in base run only"
                          if after == 0 else
                          f"detections fell {before} -> {after}")
            anomaly_attributions.append(Attribution(
                subject=kind, kind="anomaly",
                magnitude=abs(after - before), detail=detail,
            ))
        anomaly_attributions.sort(key=lambda a: -a.magnitude)
        attributions.extend(anomaly_attributions)
        for entry in report.metrics.regressions[:_TOP_METRICS]:
            change = entry.relative_change
            attributions.append(Attribution(
                subject=entry.metric, kind="metric", magnitude=change,
                detail=(
                    f"{entry.base:g} -> {entry.current:g} "
                    + ("(new nonzero)" if change == float("inf")
                       else f"({change * 100:+.1f}%)")),
            ))
        for key, (before, after) in report.config_changes.items():
            attributions.append(Attribution(
                subject=key, kind="config", magnitude=0.0,
                detail=f"{before!r} -> {after!r}",
            ))

    report.attributions = attributions
    return report


def load_run_artifact(
    path: Union[str, "os.PathLike[str]"],
) -> Tuple[str, Union[RunManifest, HostProfile]]:
    """Load a run artifact, sniffing its type from the JSON shape.

    Returns ``("manifest", RunManifest)`` or ``("profile",
    HostProfile)``; raises ``ValueError`` for anything else.  The two
    artifacts are unambiguous: a manifest has ``counters``/``gauges``,
    a profile has ``scopes``/``shares``.
    """
    with open(os.fspath(path), encoding="utf-8") as handle:
        raw = json.load(handle)
    if not isinstance(raw, dict):
        raise ValueError(f"{path}: not a JSON object")
    if "scopes" in raw and "shares" in raw:
        return "profile", HostProfile.from_dict(raw)
    if "counters" in raw or "gauges" in raw:
        return "manifest", RunManifest.from_json(json.dumps(raw))
    raise ValueError(
        f"{path}: neither a RunManifest nor a HostProfile")
