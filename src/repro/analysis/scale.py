"""Population-scaling sweep: cost per simulated round vs trainer count.

The scaling claim of this refactor is that a session models 10^2-10^5
trainers at O(sample + cohorts) simulation cost: an exact seeded sample
runs the full protocol while the remainder is modeled statistically per
cohort (see ``docs/SCALING.md`` and :class:`repro.core.CohortPlan`).
This module measures that trajectory and packages it as a
:class:`~repro.obs.manifest.RunManifest` so the PR-3 ``compare``
machinery can gate regressions in CI:

- :func:`run_scale_sweep` runs one session per population point and
  records wall-clock per simulated iteration alongside the
  deterministic load metrics (directory registrations/lookups, flow
  recomputations, stale wakeups);
- :func:`scale_manifest` flattens the points into manifest counters
  keyed ``scale.p{population}.{metric}``, fingerprinted by the scenario
  (not the population list, so a CI subset sweep still compares
  apples-to-apples against the committed full trajectory);
- ``python -m repro.cli scale`` wraps both and diffs against a
  committed baseline (``benchmarks/BENCH_scale.json``) with a
  relative wall-clock threshold.

Observed sweeps (``ScaleScenario.observed``) additionally attach the
bounded telemetry stack — a
:class:`~repro.obs.metrics.MetricsRegistry`, a
:class:`~repro.obs.metrics.ResourceSampler` and, below rate 1.0, a
deterministic :class:`~repro.obs.bus.SamplingPolicy` on the firehose
families — and report its cost (``telemetry_peak_bytes``,
``events_observed``) per point, so the committed baseline also gates
observability-cost regressions.  A progress stream
(:class:`~repro.obs.progress.ProgressReporter`) can heartbeat the sweep
live (``cli scale --progress``).

Wall-clock is the only machine-dependent metric in the manifest; every
other counter — including the telemetry-cost ones, which derive from
the deterministic event stream and the obs memory model — must not
move at all between runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..obs.profiling import SYSTEM_WALL_CLOCK, WallClock

__all__ = [
    "DEFAULT_DIRSHARD_POPULATIONS",
    "DEFAULT_POPULATIONS",
    "DEFAULT_SHARD_COUNTS",
    "DirshardPoint",
    "DirshardScenario",
    "ScalePoint",
    "ScaleScenario",
    "dirshard_manifest",
    "format_dirshard_table",
    "format_scale_table",
    "run_dirshard_point",
    "run_dirshard_sweep",
    "run_scale_point",
    "run_scale_sweep",
    "scale_manifest",
]

#: The committed trajectory: 10^2 .. 10^5 trainers.
DEFAULT_POPULATIONS = (100, 1_000, 10_000, 100_000)

#: The committed directory-sharding trajectory.
DEFAULT_SHARD_COUNTS = (1, 2, 4)
DEFAULT_DIRSHARD_POPULATIONS = (1_000, 100_000)


@dataclass(frozen=True)
class ScaleScenario:
    """The fixed shape every population point shares.

    Mirrors the historical ``benchmarks/test_scalability.py`` setup
    (gradient mode, 10 Mbps, 8 IPFS nodes, 40k-parameter model) so the
    per-trainer cost matches the existing per-trainer sweep.

    ``observed`` attaches the bounded metrics stack (registry +
    resource sampler) to every point; ``event_sample_rate`` below 1.0
    additionally thins the firehose event families with a deterministic
    :class:`~repro.obs.bus.SamplingPolicy`.  Both are part of the
    scenario fingerprint: an observed sweep never diffs against an
    unobserved baseline.
    """

    exact_trainers: int = 16
    cohorts: int = 16
    num_partitions: int = 4
    model_params: int = 40_000
    num_ipfs_nodes: int = 8
    bandwidth_mbps: float = 10.0
    iterations: int = 1
    seed: int = 7
    observed: bool = False
    event_sample_rate: float = 1.0
    #: Sim-seconds between resource samples.  5 s over a ~900 s round
    #: still retains ~180 points per series while keeping the sampler
    #: inside the 15% observed-overhead budget at 10^4-10^5 trainers.
    sample_interval: float = 5.0

    def __post_init__(self):
        if not 0.0 < self.event_sample_rate <= 1.0:
            raise ValueError("event_sample_rate must be in (0, 1]")
        if self.sample_interval <= 0:
            raise ValueError("sample_interval must be positive")


@dataclass(frozen=True)
class ScalePoint:
    """Measured cost of one population point."""

    population: int
    #: Wall-clock seconds per simulated iteration (min over repeats).
    wall_seconds: float
    #: Simulated seconds the run covered (deterministic).
    sim_seconds: float
    iterations: int
    registrations: int
    lookups: int
    recomputed_flows: int
    cancelled_wakeups: int
    stale_wakeups: int
    cohorts_completed: int
    #: Peak modelled telemetry memory (0 when unobserved; deterministic).
    telemetry_peak_bytes: int = 0
    #: Events the metrics registry folded (0 when unobserved).
    events_observed: int = 0


def _build_session(population: int, scenario: ScaleScenario):
    from ..core import CohortPlan, FLSession, ProtocolConfig
    from ..ml import Dataset, SyntheticModel
    from ..net import NetworkProfile
    import numpy as np

    config = ProtocolConfig(
        num_partitions=scenario.num_partitions,
        t_train=600.0,
        t_sync=1200.0,
        update_mode="gradient",
        poll_interval=0.25,
        seed=scenario.seed,
    )
    datasets = [
        Dataset(np.full((1, 1), float(index + 1)), np.zeros(1))
        for index in range(scenario.exact_trainers)
    ]
    return FLSession(
        config,
        lambda: SyntheticModel(scenario.model_params),
        datasets,
        network=NetworkProfile(
            num_ipfs_nodes=scenario.num_ipfs_nodes,
            bandwidth_mbps=scenario.bandwidth_mbps,
        ),
        cohort=CohortPlan(
            population=population,
            cohorts=scenario.cohorts,
            seed=scenario.seed,
        ),
    )


def _attach_observability(session, scenario: ScaleScenario):
    """Wire the bounded telemetry stack onto a scale session."""
    from ..obs import MetricsRegistry, ResourceSampler, SamplingPolicy

    if scenario.event_sample_rate < 1.0:
        session.sim.bus.sampling = \
            SamplingPolicy.firehose(scenario.event_sample_rate)
    registry = MetricsRegistry(session.sim.bus)
    sampler = ResourceSampler.for_session(
        session, registry, interval=scenario.sample_interval)
    return registry, sampler


def run_scale_point(population: int,
                    scenario: ScaleScenario = ScaleScenario(),
                    repeats: int = 1,
                    progress=None,
                    clock: Optional[WallClock] = None) -> ScalePoint:
    """Run one population point; wall-clock is the min over ``repeats``.

    The minimum is the right statistic for a regression gate: scheduler
    noise only ever adds time, so the fastest repeat is the closest
    estimate of the code's intrinsic cost.  ``progress`` is an optional
    callable ``(session, registry) -> resource`` attached around the
    final repeat (the one whose deterministic counters are reported);
    its ``close()`` is called after the run.  ``clock`` is the wall
    clock to measure with (default
    :data:`~repro.obs.profiling.SYSTEM_WALL_CLOCK`; inject a
    :class:`~repro.obs.profiling.FakeWallClock` to make the measured
    wall time deterministic in tests).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if clock is None:
        clock = SYSTEM_WALL_CLOCK
    best_wall = float("inf")
    session = registry = sampler = None
    for repeat in range(repeats):
        session = _build_session(population, scenario)
        registry = sampler = None
        if scenario.observed:
            registry, sampler = _attach_observability(session, scenario)
        reporter = None
        if progress is not None and repeat == repeats - 1:
            reporter = progress(session, registry)
        started = clock.seconds()
        for _ in range(scenario.iterations):
            session.run_iteration()
        wall = (clock.seconds() - started) / scenario.iterations
        best_wall = min(best_wall, wall)
        if sampler is not None:
            sampler.stop()
        if registry is not None:
            registry.close()
        if reporter is not None:
            reporter.close()
    scheduler = session.testbed.network._scheduler
    return ScalePoint(
        population=population,
        wall_seconds=best_wall,
        sim_seconds=session.sim.now,
        iterations=scenario.iterations,
        registrations=session.directory.register_count,
        lookups=session.directory.lookup_count,
        recomputed_flows=scheduler.recomputed_flows,
        cancelled_wakeups=scheduler.cancelled_wakeups,
        stale_wakeups=scheduler.stale_wakeups,
        cohorts_completed=sum(
            cohort.completed_iterations for cohort in session.cohorts
        ),
        telemetry_peak_bytes=(
            registry.peak_telemetry_bytes if registry is not None else 0),
        events_observed=(
            registry.events_observed if registry is not None else 0),
    )


def run_scale_sweep(populations: Sequence[int] = DEFAULT_POPULATIONS,
                    scenario: ScaleScenario = ScaleScenario(),
                    repeats: int = 1,
                    progress_jsonl=None,
                    progress_stream=None,
                    clock: Optional[WallClock] = None) -> List[ScalePoint]:
    """Run every population point, in order.

    ``progress_jsonl`` (path or writable stream) and/or
    ``progress_stream`` (human-readable, e.g. ``sys.stderr``) attach a
    :class:`~repro.obs.progress.ProgressReporter` labelled
    ``p{population}`` to each point; a sweep shares one JSONL file.
    """
    if not populations:
        raise ValueError("a sweep needs at least one population")
    with_progress = progress_jsonl is not None or progress_stream is not None
    points = []
    for population in sorted(populations):
        point_progress = None
        if with_progress:
            def point_progress(session, registry, _pop=population):
                from ..obs.progress import ProgressReporter

                return ProgressReporter(
                    session.sim.bus, registry=registry,
                    stream=progress_stream, jsonl=progress_jsonl,
                    label=f"p{_pop}",
                )
        points.append(run_scale_point(
            population, scenario, repeats=repeats,
            progress=point_progress, clock=clock))
    return points


def scale_manifest(points: Sequence[ScalePoint],
                   scenario: ScaleScenario = ScaleScenario()):
    """Package a sweep as a RunManifest (``scale.p{population}.*``).

    The fingerprint covers the *scenario*, not the population list:
    a CI run of the small points diffs cleanly against the committed
    full trajectory, with the big points reported as absent rather
    than as regressions.  Observed sweeps add per-point
    ``telemetry_peak_bytes`` / ``events_observed`` counters, so the
    same ``compare`` gate also catches observability-cost growth.
    """
    from ..obs.manifest import RunManifest, config_fingerprint

    counters = {}
    for point in points:
        prefix = f"scale.p{point.population}"
        counters[f"{prefix}.wall_per_iteration"] = point.wall_seconds
        counters[f"{prefix}.sim_seconds"] = point.sim_seconds
        counters[f"{prefix}.registrations"] = float(point.registrations)
        counters[f"{prefix}.lookups"] = float(point.lookups)
        counters[f"{prefix}.recomputed_flows"] = float(point.recomputed_flows)
        counters[f"{prefix}.cancelled_wakeups"] = float(
            point.cancelled_wakeups)
        counters[f"{prefix}.stale_wakeups"] = float(point.stale_wakeups)
        counters[f"{prefix}.cohorts_completed"] = float(
            point.cohorts_completed)
        if scenario.observed:
            counters[f"{prefix}.telemetry_peak_bytes"] = float(
                point.telemetry_peak_bytes)
            counters[f"{prefix}.events_observed"] = float(
                point.events_observed)
    return RunManifest(
        fingerprint=config_fingerprint(scenario),
        counters=dict(sorted(counters.items())),
    )


def format_scale_table(points: Sequence[ScalePoint],
                       title: Optional[str] = None) -> str:
    """Human-readable trajectory table."""
    from .results import format_table

    return format_table(
        ["population", "wall/iter (s)", "sim (s)", "dir registers",
         "dir lookups", "recomputed flows", "stale wakeups",
         "telemetry peak (B)"],
        [[point.population, round(point.wall_seconds, 4),
          round(point.sim_seconds, 2), point.registrations, point.lookups,
          point.recomputed_flows, point.stale_wakeups,
          point.telemetry_peak_bytes]
         for point in points],
        title=title,
    )


# -- directory-sharding sweep (ROADMAP item 2) ----------------------------------


@dataclass(frozen=True)
class DirshardScenario:
    """The fixed shape every (population, shards) point shares.

    Same deployment as :class:`ScaleScenario` (gradient mode, cohorts,
    40k-parameter model) with two deliberate differences:

    - ``processing_delay`` is non-zero: the sweep measures how sharding
      divides the directory's *serialized server work* (the Sec. VI
      bottleneck), so there must be serialized work to divide.  Sustained
      registrations/sec is ``register_count / max-shard-busy-seconds`` —
      a pure function of the deterministic load ledger, not wall clock.
    - ``placement`` defaults to ``modulo``: consistent hashing over a
      handful of ``(partition, iteration)`` keys balances imperfectly
      (e.g. 2/4/2/0 over 4 shards for 8 partitions), which is a placement
      property, not a serialization one.  Modulo placement keeps every
      shard's share equal so the trajectory isolates the dividend.
      ``docs/SCALING.md`` discusses the skew.
    """

    exact_trainers: int = 16
    cohorts: int = 16
    num_partitions: int = 8
    model_params: int = 40_000
    num_ipfs_nodes: int = 8
    bandwidth_mbps: float = 10.0
    iterations: int = 1
    seed: int = 7
    replication: int = 1
    placement: str = "modulo"
    #: Serialized directory seconds per request unit.
    processing_delay: float = 2e-5

    def __post_init__(self):
        if self.processing_delay < 0:
            raise ValueError("processing_delay must be non-negative")


@dataclass(frozen=True)
class DirshardPoint:
    """Measured directory cost of one (population, shard count) point."""

    population: int
    shards: int
    #: Wall-clock seconds per simulated iteration (min over repeats).
    wall_seconds: float
    sim_seconds: float
    iterations: int
    registrations: int
    lookups: int
    #: Request units dequeued across all shards (cohort bulk messages
    #: count as their ``count``).
    served_units: int
    #: Serialized server seconds, summed over shards (deterministic).
    busy_seconds: float
    #: The busiest single shard's serialized seconds — the critical path.
    max_busy_seconds: float
    #: ``registrations / max_busy_seconds``: sustained registration
    #: throughput limited by the slowest shard.  Deterministic.
    registrations_per_second: float
    #: shard name -> fraction of served units (load distribution).
    shard_shares: Dict[str, float] = field(default_factory=dict)


def _build_dirshard_session(population: int, shards: int,
                            scenario: DirshardScenario):
    from ..core import CohortPlan, DirectoryProfile, FLSession, \
        ProtocolConfig
    from ..ml import Dataset, SyntheticModel
    from ..net import NetworkProfile
    import numpy as np

    config = ProtocolConfig(
        num_partitions=scenario.num_partitions,
        t_train=600.0,
        t_sync=1200.0,
        update_mode="gradient",
        poll_interval=0.25,
        seed=scenario.seed,
    )
    datasets = [
        Dataset(np.full((1, 1), float(index + 1)), np.zeros(1))
        for index in range(scenario.exact_trainers)
    ]
    return FLSession(
        config,
        lambda: SyntheticModel(scenario.model_params),
        datasets,
        network=NetworkProfile(
            num_ipfs_nodes=scenario.num_ipfs_nodes,
            bandwidth_mbps=scenario.bandwidth_mbps,
        ),
        directory=DirectoryProfile(
            shards=shards,
            replication=min(scenario.replication, shards),
            placement=scenario.placement,
            processing_delay=scenario.processing_delay,
        ),
        cohort=CohortPlan(
            population=population,
            cohorts=scenario.cohorts,
            seed=scenario.seed,
        ),
    )


def run_dirshard_point(population: int, shards: int,
                       scenario: DirshardScenario = DirshardScenario(),
                       repeats: int = 1,
                       clock: Optional[WallClock] = None) -> DirshardPoint:
    """Run one (population, shard count) point.

    Wall-clock is the min over ``repeats`` (see
    :func:`run_scale_point`); every other reported number derives from
    the deterministic load ledger and must not move between runs.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if clock is None:
        clock = SYSTEM_WALL_CLOCK
    best_wall = float("inf")
    session = None
    for _ in range(repeats):
        session = _build_dirshard_session(population, shards, scenario)
        started = clock.seconds()
        for _ in range(scenario.iterations):
            session.run_iteration()
        wall = (clock.seconds() - started) / scenario.iterations
        best_wall = min(best_wall, wall)
    directory = session.directory
    shard_servers = getattr(directory, "shards", None)
    if shard_servers is None:
        max_busy = directory.busy_seconds
        shares = {"directory": 1.0}
    else:
        max_busy = directory.max_busy_seconds
        total_units = max(1, directory.served_units)
        shares = {
            shard.name: shard.served_units / total_units
            for shard in shard_servers
        }
    registrations = directory.register_count
    return DirshardPoint(
        population=population,
        shards=shards,
        wall_seconds=best_wall,
        sim_seconds=session.sim.now,
        iterations=scenario.iterations,
        registrations=registrations,
        lookups=directory.lookup_count,
        served_units=directory.served_units,
        busy_seconds=directory.busy_seconds,
        max_busy_seconds=max_busy,
        registrations_per_second=(
            registrations / max_busy if max_busy > 0 else 0.0
        ),
        shard_shares=shares,
    )


def run_dirshard_sweep(
    populations: Sequence[int] = DEFAULT_DIRSHARD_POPULATIONS,
    shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
    scenario: DirshardScenario = DirshardScenario(),
    repeats: int = 1,
    clock: Optional[WallClock] = None,
) -> List[DirshardPoint]:
    """Every (population, shard count) pair, populations outer."""
    if not populations:
        raise ValueError("a sweep needs at least one population")
    if not shard_counts:
        raise ValueError("a sweep needs at least one shard count")
    points = []
    for population in sorted(populations):
        for shards in sorted(shard_counts):
            points.append(run_dirshard_point(
                population, shards, scenario,
                repeats=repeats, clock=clock,
            ))
    return points


def dirshard_manifest(points: Sequence[DirshardPoint],
                      scenario: DirshardScenario = DirshardScenario()):
    """Package a sweep as a RunManifest (``dirshard.p{pop}.s{n}.*``).

    Like :func:`scale_manifest`, the fingerprint covers the scenario
    only, so a CI subset (one population, two shard counts) diffs
    cleanly against the committed full trajectory.  Two counter
    families should gate warn-only: the per-shard ``...share.{shard}``
    load distribution (it moves whenever placement or the shard list
    changes, which the fingerprint already guards) and
    ``...regs_per_sec`` (higher is *better* there, while
    :func:`~repro.obs.manifest.compare_manifests` treats growth as the
    regression direction — ``...max_busy_seconds``, its exact inverse
    dividend, carries the throughput gate).  ``python -m repro.cli
    dirshard`` applies both exemptions.
    """
    from ..obs.manifest import RunManifest, config_fingerprint

    counters = {}
    for point in points:
        prefix = f"dirshard.p{point.population}.s{point.shards}"
        counters[f"{prefix}.wall_per_iteration"] = point.wall_seconds
        counters[f"{prefix}.sim_seconds"] = point.sim_seconds
        counters[f"{prefix}.registrations"] = float(point.registrations)
        counters[f"{prefix}.lookups"] = float(point.lookups)
        counters[f"{prefix}.served_units"] = float(point.served_units)
        counters[f"{prefix}.busy_seconds"] = point.busy_seconds
        counters[f"{prefix}.max_busy_seconds"] = point.max_busy_seconds
        counters[f"{prefix}.regs_per_sec"] = point.registrations_per_second
        for shard, share in sorted(point.shard_shares.items()):
            counters[f"{prefix}.share.{shard}"] = share
    return RunManifest(
        fingerprint=config_fingerprint(scenario),
        counters=dict(sorted(counters.items())),
    )


def format_dirshard_table(points: Sequence[DirshardPoint],
                          title: Optional[str] = None) -> str:
    """Human-readable sharding trajectory table."""
    from .results import format_table

    return format_table(
        ["population", "shards", "wall/iter (s)", "dir registers",
         "served units", "busy (s)", "max shard busy (s)",
         "regs/sec"],
        [[point.population, point.shards, round(point.wall_seconds, 4),
          point.registrations, point.served_units,
          round(point.busy_seconds, 3),
          round(point.max_busy_seconds, 3),
          round(point.registrations_per_second, 1)]
         for point in points],
        title=title,
    )
