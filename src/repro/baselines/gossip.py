"""Baseline: purely decentralized gossip federated learning.

The paper's first category of decentralized FL ("peers communicate
directly with others and perform the learning process via gossiping",
refs [5, 6, 7]) and the reason it is rejected: "it may not always achieve
the same performance in model accuracy and convergence as centralized
FL, and this highly depends on the nature of the dataset".

Implementation: push-pull gossip averaging.  Each round every trainer
trains locally, then exchanges models with ``fanout`` random neighbours
and averages what it holds.  There is no global model — per-trainer
models drift apart, especially on non-IID data, which the convergence
benchmark quantifies against our protocol's exact FedAvg.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..ml import Dataset, Model, local_update
from ..net import Network, Transport, mbps
from ..obs import TelemetryCollector
from ..obs.events import (
    BytesReceived,
    IterationFinished,
    IterationStarted,
    TrainerCompleted,
)
from ..sim import Simulator
from ..core.config import ProtocolConfig
from ..core.partition import decode_partition, encode_partition
from ..core.telemetry import IterationMetrics, SessionMetrics

__all__ = ["GossipFLSession"]

KIND_MODEL_PUSH = "gossip.push"
MESSAGE_OVERHEAD = 128


class GossipFLSession:
    """Gossip-averaging FL over direct links (no aggregators at all)."""

    def __init__(
        self,
        config: ProtocolConfig,
        model_factory: Callable[[], Model],
        datasets: Sequence[Dataset],
        fanout: int = 2,
        bandwidth_mbps: float = 10.0,
        latency: float = 0.0,
        seed: int = 0,
        sim: Optional[Simulator] = None,
    ):
        if not datasets:
            raise ValueError("need at least one trainer dataset")
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        self.config = config
        self.fanout = min(fanout, max(1, len(datasets) - 1))
        self.sim = sim or Simulator()
        self._rng = random.Random(seed)
        self.network = Network(self.sim, default_latency=latency)
        self.trainer_names = [f"trainer-{i}" for i in range(len(datasets))]
        for name in self.trainer_names:
            self.network.add_host(name, up_bandwidth=mbps(bandwidth_mbps))
        self.transport = Transport(self.network)
        for name in self.trainer_names:
            self.transport.endpoint(name)
        self._template = model_factory()
        self.models: Dict[str, Model] = {
            name: self._template.clone() for name in self.trainer_names
        }
        self.datasets = dict(zip(self.trainer_names, datasets))
        self.telemetry = TelemetryCollector(self.sim.bus)
        self.metrics: SessionMetrics = self.telemetry.session
        self._iteration = 0

    def _neighbours(self, name: str) -> List[str]:
        others = [peer for peer in self.trainer_names if peer != name]
        self._rng.shuffle(others)
        return others[: self.fanout]

    def _trainer_proc(self, name: str, iteration: int,
                      pushes_expected: Dict):
        bus = self.sim.bus
        endpoint = self.transport.endpoint(name)
        model = self.models[name]
        delta = local_update(
            model, self.datasets[name], self.config.train,
            seed=self.config.seed + self.trainer_names.index(name)
            + 7919 * iteration,
        )
        own_params = model.get_params() + delta
        blob = encode_partition(own_params, 1.0)

        for peer in self._neighbours(name):
            endpoint.send(
                peer, KIND_MODEL_PUSH,
                payload={"iteration": iteration, "blob": blob},
                size=len(blob) + MESSAGE_OVERHEAD,
            )

        received = [own_params]
        for _ in range(pushes_expected[name]):
            message = yield endpoint.receive(kind=KIND_MODEL_PUSH)
            if message.payload["iteration"] != iteration:
                continue
            values, counter = decode_partition(message.payload["blob"])
            received.append(values / counter)
            if bus.wants(BytesReceived):
                bus.publish(BytesReceived(
                    at=self.sim.now, iteration=iteration, participant=name,
                    amount=len(message.payload["blob"]) + MESSAGE_OVERHEAD,
                ))
        model.set_params(np.mean(received, axis=0))
        if bus.wants(TrainerCompleted):
            bus.publish(TrainerCompleted(
                at=self.sim.now, iteration=iteration, trainer=name,
            ))

    def run_iteration(self) -> Optional[IterationMetrics]:
        """One gossip round; returns its metrics."""
        iteration = self._iteration
        self._iteration += 1
        bus = self.sim.bus
        if bus.wants(IterationStarted):
            bus.publish(IterationStarted(at=self.sim.now,
                                         iteration=iteration))

        # Fix this round's gossip graph up front so receivers know how
        # many pushes to await (avoids modelling timeouts).
        self._rng.seed(self.config.seed + iteration)
        targets = {
            name: self._neighbours(name) for name in self.trainer_names
        }
        pushes_expected = {name: 0 for name in self.trainer_names}
        for name, peers in targets.items():
            for peer in peers:
                pushes_expected[peer] += 1
        # Re-seed so the processes draw the same neighbour sets.
        self._rng.seed(self.config.seed + iteration)

        def driver():
            processes = [
                self.sim.process(
                    self._trainer_proc(name, iteration, pushes_expected),
                    name=f"{name}:i{iteration}",
                )
                for name in self.trainer_names
            ]
            yield self.sim.all_of(processes)

        driver_proc = self.sim.process(driver(), name=f"gossip:{iteration}")
        self.sim.run_until(driver_proc)
        if not driver_proc.ok:
            raise driver_proc.value
        if bus.wants(IterationFinished):
            bus.publish(IterationFinished(at=self.sim.now,
                                          iteration=iteration))
        if self.metrics.iterations and \
                self.metrics.iterations[-1].iteration == iteration:
            return self.metrics.iterations[-1]
        return None

    def run(self, rounds: int) -> SessionMetrics:
        for _ in range(rounds):
            self.run_iteration()
        return self.metrics

    # -- results --------------------------------------------------------------------

    def model_divergence(self) -> float:
        """Max pairwise L2 distance between trainers' models — zero for
        consensus protocols, strictly positive under gossip."""
        params = [self.models[name].get_params()
                  for name in self.trainer_names]
        worst = 0.0
        for i in range(len(params)):
            for j in range(i + 1, len(params)):
                worst = max(worst, float(
                    np.linalg.norm(params[i] - params[j])
                ))
        return worst

    def mean_params(self) -> np.ndarray:
        return np.mean(
            [self.models[name].get_params()
             for name in self.trainer_names], axis=0
        )
