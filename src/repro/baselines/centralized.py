"""Baseline: classic centralized federated learning.

One aggregation server collects every trainer's full update, averages,
and broadcasts the new model.  This is the architecture whose trust and
bottleneck problems motivate the paper (Sec. I); it also serves as the
convergence reference — the decentralized protocol must track it exactly.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

import numpy as np

from ..ml import Dataset, Model, compute_gradient, local_update
from ..net import Network, Transport, mbps
from ..obs import TelemetryCollector
from ..obs.events import (
    BytesReceived,
    GradientRegistered,
    GradientsAggregated,
    IterationFinished,
    IterationStarted,
    TrainerCompleted,
    UpdateRegistered,
    UploadCompleted,
)
from ..sim import Simulator
from ..core.config import ProtocolConfig
from ..core.partition import decode_partition, encode_partition, \
    sum_encoded_partitions
from ..core.telemetry import IterationMetrics, SessionMetrics

__all__ = ["CentralizedSession"]

KIND_UPDATE_UP = "central.update"
KIND_MODEL_DOWN = "central.model"
MESSAGE_OVERHEAD = 128
SERVER = "server"


class CentralizedSession:
    """Server-mediated FedAvg over the emulated network."""

    def __init__(
        self,
        config: ProtocolConfig,
        model_factory: Callable[[], Model],
        datasets: Sequence[Dataset],
        bandwidth_mbps: float = 10.0,
        server_bandwidth_mbps: Optional[float] = None,
        latency: float = 0.0,
        sim: Optional[Simulator] = None,
    ):
        if not datasets:
            raise ValueError("need at least one trainer dataset")
        self.config = config
        self.sim = sim or Simulator()
        self.network = Network(self.sim, default_latency=latency)
        self.trainer_names = [f"trainer-{i}" for i in range(len(datasets))]
        for name in self.trainer_names:
            self.network.add_host(name, up_bandwidth=mbps(bandwidth_mbps))
        server_bandwidth = mbps(server_bandwidth_mbps or bandwidth_mbps)
        self.network.add_host(SERVER, up_bandwidth=server_bandwidth)
        self.transport = Transport(self.network)
        for name in self.trainer_names + [SERVER]:
            self.transport.endpoint(name)
        self._template = model_factory()
        self.models: Dict[str, Model] = {
            name: self._template.clone() for name in self.trainer_names
        }
        self.datasets = dict(zip(self.trainer_names, datasets))
        self.telemetry = TelemetryCollector(self.sim.bus)
        self.metrics: SessionMetrics = self.telemetry.session
        self._iteration = 0

    def _trainer_proc(self, name: str, iteration: int):
        bus = self.sim.bus
        endpoint = self.transport.endpoint(name)
        model = self.models[name]
        if self.config.local_train_seconds > 0:
            yield self.sim.timeout(self.config.local_train_seconds)
        if self.config.update_mode == "params":
            delta = local_update(
                model, self.datasets[name], self.config.train,
                seed=self.config.seed + self.trainer_names.index(name)
                + 7919 * iteration,
            )
            vector = model.get_params() + delta
        else:
            vector = compute_gradient(model, self.datasets[name])
        blob = encode_partition(vector, 1.0)
        upload_started = self.sim.now
        yield endpoint.send(SERVER, KIND_UPDATE_UP,
                            payload={"trainer": name, "blob": blob,
                                     "iteration": iteration},
                            size=len(blob) + MESSAGE_OVERHEAD)
        if bus.wants(UploadCompleted):
            bus.publish(UploadCompleted(
                at=self.sim.now, iteration=iteration, trainer=name,
                delay=self.sim.now - upload_started,
            ))
        message = yield endpoint.receive(kind=KIND_MODEL_DOWN)
        values, counter = decode_partition(message.payload["blob"])
        averaged = values / counter
        if self.config.update_mode == "params":
            model.set_params(averaged)
        else:
            model.set_params(
                model.get_params() - self.config.learning_rate * averaged
            )
        if bus.wants(TrainerCompleted):
            bus.publish(TrainerCompleted(
                at=self.sim.now, iteration=iteration, trainer=name,
            ))

    def _server_proc(self, iteration: int):
        bus = self.sim.bus
        endpoint = self.transport.endpoint(SERVER)
        blobs = []
        while len(blobs) < len(self.trainer_names):
            message = yield endpoint.receive(kind=KIND_UPDATE_UP)
            if message.payload["iteration"] != iteration:
                continue
            if bus.wants(GradientRegistered):
                bus.publish(GradientRegistered(
                    at=self.sim.now, iteration=iteration,
                    uploader=message.payload["trainer"], partition_id=0,
                ))
            blobs.append(message.payload["blob"])
            if bus.wants(BytesReceived):
                bus.publish(BytesReceived(
                    at=self.sim.now, iteration=iteration,
                    participant=SERVER,
                    amount=len(message.payload["blob"]) + MESSAGE_OVERHEAD,
                ))
        if bus.wants(GradientsAggregated):
            bus.publish(GradientsAggregated(
                at=self.sim.now, iteration=iteration, aggregator=SERVER,
            ))
        aggregate = sum_encoded_partitions(blobs)
        sends = [
            endpoint.send(name, KIND_MODEL_DOWN,
                          payload={"blob": aggregate,
                                   "iteration": iteration},
                          size=len(aggregate) + MESSAGE_OVERHEAD)
            for name in self.trainer_names
        ]
        yield self.sim.all_of(sends)
        if bus.wants(UpdateRegistered):
            bus.publish(UpdateRegistered(
                at=self.sim.now, iteration=iteration, aggregator=SERVER,
                partition_id=0,
            ))

    def run_iteration(self) -> Optional[IterationMetrics]:
        """One centralized round; returns its metrics."""
        iteration = self._iteration
        self._iteration += 1
        bus = self.sim.bus
        if bus.wants(IterationStarted):
            bus.publish(IterationStarted(at=self.sim.now,
                                         iteration=iteration))

        def driver():
            processes = [
                self.sim.process(
                    self._trainer_proc(name, iteration),
                    name=f"{name}:i{iteration}",
                )
                for name in self.trainer_names
            ]
            processes.append(self.sim.process(
                self._server_proc(iteration),
                name=f"server:i{iteration}",
            ))
            yield self.sim.all_of(processes)

        driver_proc = self.sim.process(driver(), name=f"central:{iteration}")
        self.sim.run_until(driver_proc)
        if not driver_proc.ok:
            raise driver_proc.value
        if bus.wants(IterationFinished):
            bus.publish(IterationFinished(at=self.sim.now,
                                          iteration=iteration))
        if self.metrics.iterations and \
                self.metrics.iterations[-1].iteration == iteration:
            return self.metrics.iterations[-1]
        return None

    def run(self, rounds: int) -> SessionMetrics:
        for _ in range(rounds):
            self.run_iteration()
        return self.metrics

    def consensus_params(self) -> np.ndarray:
        reference = self.models[self.trainer_names[0]].get_params()
        for name in self.trainer_names[1:]:
            if not np.allclose(self.models[name].get_params(), reference,
                               atol=1e-12):
                raise AssertionError(f"{name} diverged")
        return reference
