"""Baseline systems the paper compares against or builds upon.

- :class:`DirectIPLSSession` — the original IPLS with direct p2p links
  (the "direct" series of Fig. 1).
- :class:`CentralizedSession` — classic server-mediated FedAvg.
- :class:`BlockchainFLSession` — flexibly-coupled blockchain FL with
  miner-side replication (the storage/communication blow-up of Sec. I).
- :class:`GossipFLSession` — purely decentralized gossip averaging (the
  accuracy/consensus trade-off of Sec. I).
"""

from .blockchain import Block, BlockchainFLSession, Chain
from .centralized import CentralizedSession
from .gossip import GossipFLSession
from .ipls_direct import DirectIPLSSession

__all__ = [
    "Block",
    "BlockchainFLSession",
    "CentralizedSession",
    "Chain",
    "DirectIPLSSession",
    "GossipFLSession",
]
