"""Baseline: flexibly-coupled blockchain federated learning (BCFL).

The architecture the paper contrasts against (Sec. I): "trainers just
upload their updates to the blockchain, while miners are responsible for
aggregating the trainers' updates and producing the global model … miners
have to store all updates into the blockchain, and those who serve as
aggregators have to download and aggregate every single update", with
gradient broadcast "blowing up communication".

We implement a faithful miniature: a hash-linked chain replicated on
every miner, trainer updates broadcast miner-to-miner, a round-robin
leader aggregating everything into the next block, and full replication
of update payloads — so the storage and traffic blow-up is measurable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..ml import Dataset, Model, compute_gradient, local_update
from ..net import Network, Transport, mbps
from ..obs import TelemetryCollector
from ..obs.events import (
    BytesReceived,
    GradientRegistered,
    GradientsAggregated,
    IterationFinished,
    IterationStarted,
    TrainerCompleted,
    UpdateRegistered,
    UploadCompleted,
)
from ..sim import Simulator
from ..core.config import ProtocolConfig
from ..core.partition import decode_partition, encode_partition, \
    sum_encoded_partitions
from ..core.telemetry import IterationMetrics, SessionMetrics

__all__ = ["Block", "Chain", "BlockchainFLSession"]

KIND_SUBMIT = "bcfl.submit"
KIND_GOSSIP = "bcfl.gossip"
KIND_BLOCK = "bcfl.block"
KIND_MODEL = "bcfl.model"
KIND_MODEL_REQUEST = "bcfl.model.request"
MESSAGE_OVERHEAD = 128
BLOCK_HEADER_SIZE = 256


@dataclass(frozen=True)
class Block:
    """One block: header plus the round's update digests and aggregate."""

    index: int
    prev_hash: str
    iteration: int
    update_hashes: tuple
    aggregate_hash: str

    @property
    def hash(self) -> str:
        header = (
            f"{self.index}|{self.prev_hash}|{self.iteration}|"
            + "|".join(self.update_hashes) + f"|{self.aggregate_hash}"
        )
        return hashlib.sha256(header.encode("utf-8")).hexdigest()


GENESIS = Block(index=0, prev_hash="0" * 64, iteration=-1,
                update_hashes=(), aggregate_hash="")


@dataclass
class Chain:
    """A miner's replica of the ledger plus its payload store."""

    blocks: List[Block] = field(default_factory=lambda: [GENESIS])
    #: Full update payloads, as BCFL miners "have to store all updates".
    payloads: Dict[str, bytes] = field(default_factory=dict)

    @property
    def head(self) -> Block:
        return self.blocks[-1]

    @property
    def height(self) -> int:
        return len(self.blocks) - 1

    @property
    def storage_bytes(self) -> int:
        return (
            sum(len(blob) for blob in self.payloads.values())
            + BLOCK_HEADER_SIZE * len(self.blocks)
        )

    def append(self, block: Block) -> None:
        if block.prev_hash != self.head.hash:
            raise ValueError("block does not extend the chain head")
        if block.index != self.head.index + 1:
            raise ValueError("bad block index")
        self.blocks.append(block)

    def validate(self) -> bool:
        """Full-chain hash-link check."""
        for previous, current in zip(self.blocks, self.blocks[1:]):
            if current.prev_hash != previous.hash:
                return False
            if current.index != previous.index + 1:
                return False
        return True


def blob_hash(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()


class BlockchainFLSession:
    """BCFL over the emulated network: miners + trainers."""

    def __init__(
        self,
        config: ProtocolConfig,
        model_factory: Callable[[], Model],
        datasets: Sequence[Dataset],
        num_miners: int = 4,
        bandwidth_mbps: float = 10.0,
        latency: float = 0.0,
        sim: Optional[Simulator] = None,
    ):
        if not datasets:
            raise ValueError("need at least one trainer dataset")
        if num_miners < 1:
            raise ValueError("need at least one miner")
        self.config = config
        self.sim = sim or Simulator()
        self.network = Network(self.sim, default_latency=latency)
        self.trainer_names = [f"trainer-{i}" for i in range(len(datasets))]
        self.miner_names = [f"miner-{i}" for i in range(num_miners)]
        for name in self.trainer_names + self.miner_names:
            self.network.add_host(name, up_bandwidth=mbps(bandwidth_mbps))
        self.transport = Transport(self.network)
        for name in self.trainer_names + self.miner_names:
            self.transport.endpoint(name)
        self._template = model_factory()
        self.models: Dict[str, Model] = {
            name: self._template.clone() for name in self.trainer_names
        }
        self.datasets = dict(zip(self.trainer_names, datasets))
        self.chains: Dict[str, Chain] = {
            name: Chain() for name in self.miner_names
        }
        self.telemetry = TelemetryCollector(self.sim.bus)
        self.metrics: SessionMetrics = self.telemetry.session
        self._iteration = 0

    def _entry_miner(self, trainer: str) -> str:
        index = self.trainer_names.index(trainer)
        return self.miner_names[index % len(self.miner_names)]

    def _leader(self, iteration: int) -> str:
        return self.miner_names[iteration % len(self.miner_names)]

    # -- processes ---------------------------------------------------------------

    def _trainer_proc(self, name: str, iteration: int):
        bus = self.sim.bus
        endpoint = self.transport.endpoint(name)
        model = self.models[name]
        if self.config.update_mode == "params":
            delta = local_update(
                model, self.datasets[name], self.config.train,
                seed=self.config.seed + self.trainer_names.index(name)
                + 7919 * iteration,
            )
            vector = model.get_params() + delta
        else:
            vector = compute_gradient(model, self.datasets[name])
        blob = encode_partition(vector, 1.0)
        upload_started = self.sim.now
        yield endpoint.send(
            self._entry_miner(name), KIND_SUBMIT,
            payload={"trainer": name, "iteration": iteration, "blob": blob},
            size=len(blob) + MESSAGE_OVERHEAD,
        )
        if bus.wants(UploadCompleted):
            bus.publish(UploadCompleted(
                at=self.sim.now, iteration=iteration, trainer=name,
                delay=self.sim.now - upload_started,
            ))
        message = yield endpoint.receive(kind=KIND_MODEL)
        values, counter = decode_partition(message.payload["blob"])
        averaged = values / counter
        if self.config.update_mode == "params":
            model.set_params(averaged)
        else:
            model.set_params(
                model.get_params() - self.config.learning_rate * averaged
            )
        if bus.wants(TrainerCompleted):
            bus.publish(TrainerCompleted(
                at=self.sim.now, iteration=iteration, trainer=name,
            ))

    def _miner_proc(self, name: str, iteration: int):
        bus = self.sim.bus
        endpoint = self.transport.endpoint(name)
        chain = self.chains[name]
        is_leader = self._leader(iteration) == name
        expected_updates = len(self.trainer_names)
        updates: Dict[str, bytes] = {}
        block_received = None

        while len(updates) < expected_updates or (
            not is_leader and block_received is None
        ):
            message = yield endpoint.inbox.get(
                lambda m: m.kind in (KIND_SUBMIT, KIND_GOSSIP, KIND_BLOCK)
            )
            payload = message.payload
            if message.kind == KIND_SUBMIT:
                if payload["iteration"] != iteration:
                    continue
                if bus.wants(GradientRegistered):
                    bus.publish(GradientRegistered(
                        at=self.sim.now, iteration=iteration,
                        uploader=payload["trainer"], partition_id=0,
                    ))
                blob = payload["blob"]
                updates[payload["trainer"]] = blob
                chain.payloads[blob_hash(blob)] = blob
                if bus.wants(BytesReceived):
                    bus.publish(BytesReceived(
                        at=self.sim.now, iteration=iteration,
                        participant=name,
                        amount=len(blob) + MESSAGE_OVERHEAD,
                    ))
                # Gossip the update to every other miner (the broadcast
                # blow-up the paper criticizes).
                for peer in self.miner_names:
                    if peer != name:
                        endpoint.send(
                            peer, KIND_GOSSIP, payload=payload,
                            size=len(blob) + MESSAGE_OVERHEAD,
                        )
            elif message.kind == KIND_GOSSIP:
                if payload["iteration"] != iteration:
                    continue
                blob = payload["blob"]
                updates[payload["trainer"]] = blob
                chain.payloads[blob_hash(blob)] = blob
                if bus.wants(BytesReceived):
                    bus.publish(BytesReceived(
                        at=self.sim.now, iteration=iteration,
                        participant=name,
                        amount=len(blob) + MESSAGE_OVERHEAD,
                    ))
            elif message.kind == KIND_BLOCK:
                block_received = payload["block"]
                aggregate = payload["aggregate"]
                chain.payloads[blob_hash(aggregate)] = aggregate
                chain.append(block_received)
                if bus.wants(BytesReceived):
                    bus.publish(BytesReceived(
                        at=self.sim.now, iteration=iteration,
                        participant=name,
                        amount=len(aggregate) + BLOCK_HEADER_SIZE,
                    ))

        if bus.wants(GradientsAggregated):
            bus.publish(GradientsAggregated(
                at=self.sim.now, iteration=iteration, aggregator=name,
            ))
        if not is_leader:
            return

        # Leader: aggregate everything, forge the block, broadcast it.
        aggregate = sum_encoded_partitions(list(updates.values()))
        block = Block(
            index=chain.head.index + 1,
            prev_hash=chain.head.hash,
            iteration=iteration,
            update_hashes=tuple(sorted(
                blob_hash(blob) for blob in updates.values()
            )),
            aggregate_hash=blob_hash(aggregate),
        )
        chain.payloads[blob_hash(aggregate)] = aggregate
        chain.append(block)
        block_sends = [
            endpoint.send(
                peer, KIND_BLOCK,
                payload={"block": block, "aggregate": aggregate},
                size=len(aggregate) + BLOCK_HEADER_SIZE,
            )
            for peer in self.miner_names if peer != name
        ]
        model_sends = [
            endpoint.send(
                trainer, KIND_MODEL,
                payload={"iteration": iteration, "blob": aggregate},
                size=len(aggregate) + MESSAGE_OVERHEAD,
            )
            for trainer in self.trainer_names
        ]
        yield self.sim.all_of(block_sends + model_sends)
        if bus.wants(UpdateRegistered):
            bus.publish(UpdateRegistered(
                at=self.sim.now, iteration=iteration, aggregator=name,
                partition_id=0,
            ))

    # -- driving rounds ------------------------------------------------------------

    def run_iteration(self) -> Optional[IterationMetrics]:
        """One BCFL round; returns its metrics."""
        iteration = self._iteration
        self._iteration += 1
        bus = self.sim.bus
        if bus.wants(IterationStarted):
            bus.publish(IterationStarted(at=self.sim.now,
                                         iteration=iteration))

        def driver():
            processes = [
                self.sim.process(
                    self._trainer_proc(name, iteration),
                    name=f"{name}:i{iteration}",
                )
                for name in self.trainer_names
            ] + [
                self.sim.process(
                    self._miner_proc(name, iteration),
                    name=f"{name}:i{iteration}",
                )
                for name in self.miner_names
            ]
            yield self.sim.all_of(processes)

        driver_proc = self.sim.process(driver(), name=f"bcfl:{iteration}")
        self.sim.run_until(driver_proc)
        if not driver_proc.ok:
            raise driver_proc.value
        if bus.wants(IterationFinished):
            bus.publish(IterationFinished(at=self.sim.now,
                                          iteration=iteration))
        if self.metrics.iterations and \
                self.metrics.iterations[-1].iteration == iteration:
            return self.metrics.iterations[-1]
        return None

    def run(self, rounds: int) -> SessionMetrics:
        for _ in range(rounds):
            self.run_iteration()
        return self.metrics

    # -- results ---------------------------------------------------------------------

    def consensus_params(self) -> np.ndarray:
        reference = self.models[self.trainer_names[0]].get_params()
        for name in self.trainer_names[1:]:
            if not np.allclose(self.models[name].get_params(), reference,
                               atol=1e-12):
                raise AssertionError(f"{name} diverged")
        return reference

    def total_miner_storage(self) -> int:
        """Bytes stored across all miner replicas (the blow-up)."""
        return sum(chain.storage_bytes for chain in self.chains.values())

    def chains_consistent(self) -> bool:
        """All miners hold the same valid chain."""
        heads = {chain.head.hash for chain in self.chains.values()}
        return len(heads) == 1 and all(
            chain.validate() for chain in self.chains.values()
        )
