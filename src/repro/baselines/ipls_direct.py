"""Baseline: the original IPLS with *direct* peer-to-peer communication.

The paper's Fig. 1 compares its indirect-over-IPFS design against the
direct-communication IPLS of [17] (the "8 (direct)" bar): trainers send
gradient partitions straight to the responsible aggregators over p2p
links, aggregators exchange partial updates directly, and updated
partitions flow straight back to every trainer.  No storage network, no
directory — but it *requires* "the establishment of direct communication
links between peers", the assumption the paper relaxes.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

import numpy as np

from ..ml import Dataset, Model, compute_gradient, local_update
from ..net import Testbed, build_testbed
from ..obs import TelemetryCollector
from ..obs.events import (
    BytesReceived,
    GradientRegistered,
    GradientsAggregated,
    IterationFinished,
    IterationStarted,
    SyncPhaseEnded,
    TrainerCompleted,
    UpdateRegistered,
    UploadCompleted,
)
from ..sim import Simulator
from ..core.bootstrapper import Assignment, build_assignment
from ..core.config import ProtocolConfig
from ..core.partition import (
    ModelPartitioner,
    decode_partition,
    encode_partition,
    sum_encoded_partitions,
)
from ..core.telemetry import IterationMetrics, SessionMetrics

__all__ = ["DirectIPLSSession"]

KIND_GRADIENT = "ipls.gradient"
KIND_PARTIAL = "ipls.partial"
KIND_UPDATE = "ipls.update"
MESSAGE_OVERHEAD = 128


class DirectIPLSSession:
    """IPLS over direct links, with the same roles and telemetry."""

    def __init__(
        self,
        config: ProtocolConfig,
        model_factory: Callable[[], Model],
        datasets: Sequence[Dataset],
        bandwidth_mbps: float = 10.0,
        latency: float = 0.0,
        sim: Optional[Simulator] = None,
    ):
        if not datasets:
            raise ValueError("need at least one trainer dataset")
        self.config = config
        num_aggregators = (
            config.num_partitions * config.aggregators_per_partition
        )
        # IPFS nodes exist in the testbed but are unused by this baseline.
        self.testbed: Testbed = build_testbed(
            sim=sim,
            num_trainers=len(datasets),
            num_aggregators=num_aggregators,
            num_ipfs_nodes=1,
            bandwidth_mbps=bandwidth_mbps,
            latency=latency,
        )
        self.sim = self.testbed.sim
        self._template = model_factory()
        self.partitioner = ModelPartitioner(
            self._template.num_params(), config.num_partitions
        )
        self.assignment: Assignment = build_assignment(
            config,
            trainer_names=self.testbed.trainer_names,
            aggregator_names=self.testbed.aggregator_names,
            ipfs_names=self.testbed.ipfs_names,
        )
        self.models: Dict[str, Model] = {
            name: self._template.clone()
            for name in self.testbed.trainer_names
        }
        self.datasets = {
            name: datasets[index]
            for index, name in enumerate(self.testbed.trainer_names)
        }
        self.telemetry = TelemetryCollector(self.sim.bus)
        self.metrics: SessionMetrics = self.telemetry.session
        self._iteration = 0

    # -- participant processes -------------------------------------------------------

    def _trainer_proc(self, name: str, iteration: int):
        bus = self.sim.bus
        endpoint = self.testbed.transport.endpoint(name)
        model = self.models[name]
        if self.config.local_train_seconds > 0:
            yield self.sim.timeout(self.config.local_train_seconds)
        if self.config.update_mode == "params":
            delta = local_update(
                model, self.datasets[name], self.config.train,
                seed=self.config.seed
                + self.testbed.trainer_names.index(name)
                + 7919 * iteration,
            )
            vector = model.get_params() + delta
        else:
            vector = compute_gradient(model, self.datasets[name])
        parts = self.partitioner.split(vector)
        send_started = self.sim.now
        sends = []
        for partition_id, values in enumerate(parts):
            blob = encode_partition(values, 1.0)
            aggregator = self.assignment.aggregator_of[(name, partition_id)]
            sends.append(endpoint.send(
                aggregator, KIND_GRADIENT,
                payload={"trainer": name, "partition": partition_id,
                         "iteration": iteration, "blob": blob},
                size=len(blob) + MESSAGE_OVERHEAD,
            ))
        yield self.sim.all_of(sends)
        if bus.wants(UploadCompleted):
            bus.publish(UploadCompleted(
                at=self.sim.now, iteration=iteration, trainer=name,
                delay=(self.sim.now - send_started) / max(1, len(parts)),
            ))

        # Receive one updated partition per partition id.
        received: Dict[int, np.ndarray] = {}
        while len(received) < self.partitioner.num_partitions:
            message = yield endpoint.receive(kind=KIND_UPDATE)
            payload = message.payload
            if payload["iteration"] != iteration:
                continue
            values, counter = decode_partition(payload["blob"])
            received[payload["partition"]] = values / counter
        updated = self.partitioner.join(
            [received[i] for i in range(self.partitioner.num_partitions)]
        )
        if self.config.update_mode == "params":
            model.set_params(updated)
        else:
            model.set_params(
                model.get_params() - self.config.learning_rate * updated
            )
        if bus.wants(TrainerCompleted):
            bus.publish(TrainerCompleted(
                at=self.sim.now, iteration=iteration, trainer=name,
            ))

    def _aggregator_proc(self, name: str, iteration: int):
        bus = self.sim.bus
        endpoint = self.testbed.transport.endpoint(name)
        partition_id = self.assignment.partition_of[name]
        my_trainers = set(
            self.assignment.trainers_of[(partition_id, name)]
        )
        peers = self.assignment.peers_of(name)
        blobs: Dict[str, bytes] = {}
        while len(blobs) < len(my_trainers):
            message = yield endpoint.receive(kind=KIND_GRADIENT)
            payload = message.payload
            if payload["iteration"] != iteration:
                continue
            if bus.wants(GradientRegistered):
                bus.publish(GradientRegistered(
                    at=self.sim.now, iteration=iteration,
                    uploader=payload["trainer"],
                    partition_id=partition_id,
                ))
            blobs[payload["trainer"]] = payload["blob"]
            if bus.wants(BytesReceived):
                bus.publish(BytesReceived(
                    at=self.sim.now, iteration=iteration, participant=name,
                    amount=len(payload["blob"]) + MESSAGE_OVERHEAD,
                ))
        if bus.wants(GradientsAggregated):
            bus.publish(GradientsAggregated(
                at=self.sim.now, iteration=iteration, aggregator=name,
            ))
        partial = sum_encoded_partitions(list(blobs.values()))

        contributions = {name: partial}
        if peers:
            sync_start = self.sim.now
            for peer in peers:
                endpoint.send(
                    peer, KIND_PARTIAL,
                    payload={"aggregator": name, "partition": partition_id,
                             "iteration": iteration, "blob": partial},
                    size=len(partial) + MESSAGE_OVERHEAD,
                )
            pending = set(peers)
            while pending:
                message = yield endpoint.receive(kind=KIND_PARTIAL)
                payload = message.payload
                if payload["iteration"] != iteration:
                    continue
                contributions[payload["aggregator"]] = payload["blob"]
                pending.discard(payload["aggregator"])
                if bus.wants(BytesReceived):
                    bus.publish(BytesReceived(
                        at=self.sim.now, iteration=iteration,
                        participant=name,
                        amount=len(payload["blob"]) + MESSAGE_OVERHEAD,
                    ))
            if bus.wants(SyncPhaseEnded):
                bus.publish(SyncPhaseEnded(
                    at=self.sim.now, iteration=iteration, aggregator=name,
                    duration=self.sim.now - sync_start,
                ))

        global_blob = sum_encoded_partitions(list(contributions.values()))
        # The first aggregator of the partition broadcasts to all trainers.
        if self.assignment.aggregators_for[partition_id][0] == name:
            sends = [
                endpoint.send(
                    trainer, KIND_UPDATE,
                    payload={"partition": partition_id,
                             "iteration": iteration, "blob": global_blob},
                    size=len(global_blob) + MESSAGE_OVERHEAD,
                )
                for trainer in self.testbed.trainer_names
            ]
            yield self.sim.all_of(sends)
            if bus.wants(UpdateRegistered):
                bus.publish(UpdateRegistered(
                    at=self.sim.now, iteration=iteration, aggregator=name,
                    partition_id=partition_id,
                ))

    # -- driving rounds -----------------------------------------------------------------

    def run_iteration(self) -> Optional[IterationMetrics]:
        """One direct-IPLS round; returns its metrics."""
        iteration = self._iteration
        self._iteration += 1
        bus = self.sim.bus
        if bus.wants(IterationStarted):
            bus.publish(IterationStarted(at=self.sim.now,
                                         iteration=iteration))

        def driver():
            processes = [
                self.sim.process(
                    self._trainer_proc(name, iteration),
                    name=f"{name}:i{iteration}",
                )
                for name in self.testbed.trainer_names
            ] + [
                self.sim.process(
                    self._aggregator_proc(name, iteration),
                    name=f"{name}:i{iteration}",
                )
                for name in self.testbed.aggregator_names
            ]
            yield self.sim.all_of(processes)

        driver_proc = self.sim.process(driver(), name=f"direct:{iteration}")
        self.sim.run_until(driver_proc)
        if not driver_proc.ok:
            raise driver_proc.value
        if bus.wants(IterationFinished):
            bus.publish(IterationFinished(at=self.sim.now,
                                          iteration=iteration))
        if self.metrics.iterations and \
                self.metrics.iterations[-1].iteration == iteration:
            return self.metrics.iterations[-1]
        return None

    def run(self, rounds: int) -> SessionMetrics:
        for _ in range(rounds):
            self.run_iteration()
        return self.metrics

    def consensus_params(self) -> np.ndarray:
        reference = self.models[self.testbed.trainer_names[0]].get_params()
        for name in self.testbed.trainer_names[1:]:
            if not np.allclose(self.models[name].get_params(), reference,
                               atol=1e-12):
                raise AssertionError(f"{name} diverged")
        return reference
