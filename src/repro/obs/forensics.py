"""Fault forensics: a flight recorder that seals incident bundles.

Detection without attribution is insufficient for accountability: a bare
:class:`~repro.obs.events.VerificationFailed` says *that* an aggregate
was bad, not *who* produced it, *which* trainers' contributions it
omitted, or *how* it was bad.  The :class:`FlightRecorder` closes that
gap as an ordinary bus subscriber:

- it keeps the protocol-relevant events (:data:`DEFAULT_WINDOW_EVENTS`;
  the per-chunk transfer firehose is excluded by default) in a bounded
  ring buffer — the *event window*,
- it tracks each partition's registered contributions — uploader,
  Pedersen commitment, CID — and the directory's accumulator totals,
- on :class:`~repro.obs.events.VerificationFailed`,
  :class:`~repro.obs.events.InvariantViolated` or
  :class:`~repro.obs.events.AnomalyDetected` (the
  :mod:`repro.obs.anomaly` watchdog's classification) it seals an
  :class:`IncidentBundle`: the window, the reconstructed span chain of
  the running iteration (:func:`~repro.obs.spans.build_span_tree`), a
  Perfetto slice of the incident, and — for failed update
  verifications — a :class:`BlameReport` naming the guilty aggregator,
  the affected trainers (with their partition CIDs) and classifying the
  behaviour as one of :mod:`repro.core.adversary`'s strategies.

Classification works from the commitment algebra alone (no access to
the aggregator's internals):

``replayed``
    the claimed commitment equals the *previous* round's accumulated
    product — a stale aggregate
    (:class:`~repro.core.adversary.ReplayUpdateBehavior`);
``lazy`` / ``dropped``
    the claimed averaging counter ``k`` is below the contributor count
    ``n`` and some ``k``-subset of the registered commitments multiplies
    to the claimed commitment — the complement is the dropped trainer
    set; ``k == 1`` is the lazy signature
    (:class:`~repro.core.adversary.LazyBehavior`), ``k > 1`` a fractional
    drop (:class:`~repro.core.adversary.DropGradientsBehavior`);
``altered``
    the counter claims all ``n`` contributions but the commitment does
    not open — the values were perturbed
    (:class:`~repro.core.adversary.AlterUpdateBehavior`);
``unknown``
    anything else (counter out of range, or a ``k``-subset mismatch on
    top of alteration).

Subscribe the recorder *before* any :class:`~repro.obs.monitors.
InvariantMonitors` on the same bus, so the ring already contains the
triggering event when a nested ``InvariantViolated`` arrives.
"""

from __future__ import annotations

import dataclasses
import inspect
import itertools
import json
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from . import events as _events_module
from .bus import SAMPLED_EVENT_FAMILIES, EventBus, Subscription
from .events import (
    AnomalyDetected,
    CommitmentAccumulated,
    DirectoryRequest,
    Event,
    GradientRegistered,
    InvariantViolated,
    IterationFinished,
    IterationStarted,
    TransferCompleted,
    TransferStarted,
    UpdateVerified,
    VerificationFailed,
)
from .perfetto import PerfettoExporter
from .spans import SPAN_EVENTS, SpanTree, build_span_tree

__all__ = ["BlameReport", "DEFAULT_WINDOW_EVENTS", "FlightRecorder",
           "IncidentBundle", "MAX_BLAME_SEARCH"]

#: Subset search is exponential; above this many contributors the
#: classifier reports counts only (the honest cohort sizes of every
#: experiment in the paper are well below it).
MAX_BLAME_SEARCH = 16

#: Event types the recorder keeps in its window by default: everything
#: except the firehose families (:data:`~repro.obs.bus.SAMPLED_EVENT_FAMILIES`
#: — transfer markers, directory polling, per-cohort load records),
#: which are >90% of the stream and carry no forensic signal an
#: incident needs — recording them would blow the audit overhead budget.
#: Deriving the exclusion from the samplable set also keeps the default
#: window exact under any :class:`~repro.obs.bus.SamplingPolicy`: a
#: thinned run's incident bundles are full-fidelity, not sampled.
#: Pass ``event_types`` to the recorder to widen or narrow the window.
DEFAULT_WINDOW_EVENTS = tuple(
    obj for _, obj in sorted(
        inspect.getmembers(_events_module, inspect.isclass)
    )
    if issubclass(obj, Event) and obj is not Event
    and obj not in SAMPLED_EVENT_FAMILIES
)

#: Contribution bookkeeping is pruned below this many iterations back.
_KEEP_ITERATIONS = 2


@dataclasses.dataclass
class BlameReport:
    """Attribution for one failed verification."""

    #: The accused participant (the update's uploader).
    aggregator: Optional[str]
    partition_id: int
    iteration: int
    #: "dropped" | "altered" | "replayed" | "lazy" | "unknown".
    classification: str
    #: Trainers whose contributions the aggregate provably omitted.
    dropped_trainers: Tuple[str, ...] = ()
    #: The omitted trainers' partition CIDs (aligned with
    #: :attr:`dropped_trainers`).
    dropped_cids: Tuple[str, ...] = ()
    #: Trainers whose contributions the aggregate does include.
    kept_trainers: Tuple[str, ...] = ()
    #: Contributions the directory accumulated for the partition.
    expected_count: int = 0
    #: The averaging counter decoded from the claimed aggregate.
    claimed_counter: float = 0.0
    detail: str = ""

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


def _event_record(event: Event) -> dict:
    """One JSON-friendly dict per event (the JSONL trace schema)."""
    record = {"event": type(event).__name__}
    for field in dataclasses.fields(event):
        record[field.name] = getattr(event, field.name)
    return record


@dataclasses.dataclass
class IncidentBundle:
    """Everything needed to diagnose one incident offline."""

    #: "verification_failed" | "invariant_violated" |
    #: "anomaly_detected".
    kind: str
    iteration: int
    sealed_at: float
    #: The event that triggered sealing.
    trigger: Event
    #: The ring-buffer window at sealing time (oldest first).
    events: List[Event]
    blame: Optional[BlameReport] = None
    #: Span chain of the running iteration, when reconstructible.
    span_tree: Optional[SpanTree] = None

    def perfetto(self) -> dict:
        """A Perfetto/Chrome trace-event slice of the incident window.

        Anomalies in the window render as instant markers on a
        dedicated track, so the slice shows *when* the watchdog fired
        relative to the span chain.
        """
        trees = [self.span_tree] if self.span_tree is not None else []
        exporter = PerfettoExporter(trees)
        anomalies = [event for event in self.events
                     if isinstance(event, AnomalyDetected)]
        if anomalies:
            exporter.add_anomalies(anomalies)
        return exporter.to_dict()

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "iteration": self.iteration,
            "sealed_at": self.sealed_at,
            "trigger": _event_record(self.trigger),
            "blame": self.blame.to_dict() if self.blame else None,
            "events": [_event_record(event) for event in self.events],
            "perfetto": self.perfetto(),
        }

    def write(self, path: str) -> None:
        """Serialize the bundle as JSON (non-native values stringified)."""
        with open(path, "w", encoding="utf-8") as stream:
            json.dump(self.to_dict(), stream, indent=2, default=str)
            stream.write("\n")

    def summary(self) -> str:
        head = (f"[{self.kind}] iteration {self.iteration} "
                f"at t={self.sealed_at:.3f} "
                f"({len(self.events)} events in window)")
        if self.blame is None:
            return head
        blame = self.blame
        dropped = ", ".join(blame.dropped_trainers) or "-"
        return (f"{head}\n  accused: {blame.aggregator} "
                f"(partition {blame.partition_id})"
                f"\n  classification: {blame.classification}"
                f"\n  counter: {blame.claimed_counter:g} of "
                f"{blame.expected_count} contributions"
                f"\n  dropped: {dropped}")


class FlightRecorder:
    """Bounded ring-buffer recorder sealing incident bundles."""

    def __init__(self, bus: EventBus, capacity: int = 512,
                 max_incidents: int = 16, event_types=None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if event_types is None:
            event_types = DEFAULT_WINDOW_EVENTS
        self.bus = bus
        #: Sealed bundles, oldest first (bounded by ``max_incidents``).
        self.incidents: List[IncidentBundle] = []
        #: Incidents dropped after :attr:`incidents` filled up.
        self.suppressed = 0
        self.max_incidents = max_incidents
        self._ring: Deque[Event] = deque(maxlen=capacity)
        #: (partition, iteration) -> [(uploader, commitment, cid)].
        self._contributions: Dict[Tuple[int, int],
                                  List[Tuple[str, object, str]]] = {}
        #: (partition, iteration) -> (accumulated product, count).
        #: Kept across iterations: the replay check needs round i-1.
        self._totals: Dict[Tuple[int, int], Tuple[object, int]] = {}
        #: (uploader, partition, iteration) -> cid (stamped by
        #: GradientRegistered; CommitmentAccumulated collects it).
        self._pending_cids: Dict[Tuple[str, int, int], str] = {}
        #: (partition, iteration) -> last UpdateVerified.
        self._verified: Dict[Tuple[int, int], UpdateVerified] = {}
        self._span_events: List[Event] = []
        self._open_iteration: int = -1
        self._span_types = tuple(SPAN_EVENTS)
        self._subscription: Subscription = bus.subscribe(
            self._handle, *event_types
        )

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        self._subscription.cancel()

    @property
    def window(self) -> List[Event]:
        """The current ring-buffer contents, oldest first."""
        return list(self._ring)

    @property
    def occupancy(self) -> int:
        """Events currently held in the ring (for progress heartbeats).

        Full fidelity is preserved under bus-level sampling: the
        recorder's default window (``DEFAULT_WINDOW_EVENTS``) excludes
        every samplable firehose family, so an incident window contains
        exactly the events it would in an unsampled run.
        """
        return len(self._ring)

    # -- event handling ----------------------------------------------------------

    def _handle(self, event: Event) -> None:
        self._ring.append(event)
        cls = type(event)
        if cls is IterationStarted:
            self._open_iteration = event.iteration
            self._span_events = [event]
            self._prune(event.iteration)
        elif isinstance(event, self._span_types):
            if getattr(event, "iteration", self._open_iteration) \
                    == self._open_iteration:
                self._span_events.append(event)
        if cls is GradientRegistered and event.cid is not None:
            self._pending_cids[
                (event.uploader, event.partition_id, event.iteration)
            ] = event.cid
        elif cls is CommitmentAccumulated:
            key = (event.partition_id, event.iteration)
            cid = self._pending_cids.get(
                (event.uploader, event.partition_id, event.iteration), ""
            )
            self._contributions.setdefault(key, []).append(
                (event.uploader, event.commitment, cid)
            )
            self._totals[key] = (event.accumulated, event.count)
        elif cls is UpdateVerified:
            self._verified[(event.partition_id, event.iteration)] = event
        elif cls is VerificationFailed:
            self._seal("verification_failed", event, event.iteration)
        elif cls is InvariantViolated:
            self._seal("invariant_violated", event, event.iteration)
        elif cls is AnomalyDetected:
            # The watchdog classified a degradation: auto-produce an
            # incident bundle so the run leaves evidence behind even
            # when no invariant tripped.  The trigger is already in the
            # ring (appended above), so the window shows the anomaly in
            # context.
            self._seal("anomaly_detected", event, event.iteration)

    def _prune(self, current_iteration: int) -> None:
        """Drop per-contribution bookkeeping older than the replay
        horizon (accumulator totals are tiny and kept)."""
        horizon = current_iteration - _KEEP_ITERATIONS
        for mapping in (self._contributions, self._verified):
            stale = [key for key in mapping if key[1] < horizon]
            for key in stale:
                del mapping[key]
        stale = [key for key in self._pending_cids if key[2] < horizon]
        for key in stale:
            del self._pending_cids[key]

    # -- sealing -----------------------------------------------------------------

    def _seal(self, kind: str, trigger: Event, iteration: int) -> None:
        if len(self.incidents) >= self.max_incidents:
            self.suppressed += 1
            return
        blame = None
        if isinstance(trigger, VerificationFailed):
            blame = self._blame(trigger)
        tree = None
        if self._span_events:
            # The iteration is still running (no IterationFinished yet):
            # build_span_tree falls back to the latest timestamp as the
            # root's end, which is exactly the incident horizon.
            tree = build_span_tree(self._span_events)
        self.incidents.append(IncidentBundle(
            kind=kind, iteration=iteration,
            sealed_at=trigger.at, trigger=trigger,
            events=list(self._ring), blame=blame, span_tree=tree,
        ))

    # -- blame -------------------------------------------------------------------

    def _blame(self, failure: VerificationFailed) -> BlameReport:
        report = BlameReport(
            aggregator=failure.aggregator,
            partition_id=failure.partition_id,
            iteration=failure.iteration,
            classification="unknown",
            detail=failure.reason or failure.label,
        )
        if failure.scope != "update":
            report.detail = (
                f"{failure.scope} check failed: {report.detail}"
            )
            return report
        key = (failure.partition_id, failure.iteration)
        verified = self._verified.get(key)
        contributions = sorted(
            self._contributions.get(key, ()), key=lambda c: c[0]
        )
        if verified is None or verified.claimed_commitment is None:
            report.detail += " (no commitment record to classify from)"
            return report
        report.expected_count = verified.expected_count
        report.claimed_counter = verified.claimed_counter
        n = len(contributions)

        # Replayed?  The stale aggregate opens the *previous* round's
        # accumulator.  Checked first: a replayed counter can equal n.
        previous = self._totals.get(
            (failure.partition_id, failure.iteration - 1)
        )
        if previous is not None \
                and verified.claimed_commitment == previous[0]:
            report.classification = "replayed"
            report.dropped_trainers = tuple(c[0] for c in contributions)
            report.dropped_cids = tuple(c[2] for c in contributions)
            report.detail = (
                f"claimed aggregate opens iteration "
                f"{failure.iteration - 1}'s accumulated commitment "
                f"({previous[1]} stale contributions)"
            )
            return report

        k = int(round(verified.claimed_counter))
        if k == n and n > 0:
            report.classification = "altered"
            report.kept_trainers = tuple(c[0] for c in contributions)
            report.detail = (
                f"counter claims all {n} contributions but the "
                f"commitment does not open: values were altered"
            )
            return report
        if 1 <= k < n:
            kept = self._find_subset(contributions, k,
                                     verified.claimed_commitment)
            if kept is not None:
                kept_names = {c[0] for c in kept}
                dropped = [c for c in contributions
                           if c[0] not in kept_names]
                report.classification = "lazy" if k == 1 else "dropped"
                report.kept_trainers = tuple(sorted(kept_names))
                report.dropped_trainers = tuple(c[0] for c in dropped)
                report.dropped_cids = tuple(c[2] for c in dropped)
                report.detail = (
                    f"aggregate provably sums exactly "
                    f"{k} of {n} contributions; "
                    f"omitted: {', '.join(report.dropped_trainers)}"
                )
            else:
                report.classification = "dropped"
                report.detail = (
                    f"counter shows {k} of {n} contributions but no "
                    f"{k}-subset opens the commitment (dropped and "
                    f"possibly also altered)"
                )
            return report
        report.detail = (
            f"counter {verified.claimed_counter:g} outside [1, {n}]: "
            f"unclassifiable"
        )
        return report

    @staticmethod
    def _find_subset(contributions, k: int, target):
        """The ``k``-subset whose commitment product equals ``target``,
        or None.  Deterministic: contributions arrive name-sorted, and
        :func:`itertools.combinations` preserves that order, so ties
        (identical commitments) resolve to the lexicographically first
        subset — matching the sorted-keys semantics of the drop/lazy
        behaviours."""
        if len(contributions) > MAX_BLAME_SEARCH:
            return None
        for subset in itertools.combinations(contributions, k):
            product = subset[0][1]
            for _, commitment, _ in subset[1:]:
                product = product.combine(commitment)
            if product == target:
                return subset
        return None
