"""Mergeable log-bucket quantile sketch for bounded-memory histograms.

At figure scale (16 trainers) :class:`~repro.obs.metrics.Histogram`
kept every raw observation so p50/p95/p99 were exact.  At cohort scale
(10^4-10^5 participants) that store is O(events); this module replaces
it with a two-mode structure:

- **Exact mode** (up to ``max_exact`` observations): raw values are
  retained and quantiles are float-equal to
  :func:`repro.analysis.stats.percentile` — the figure-scale behaviour,
  golden-tested in ``tests/test_obs_sketch.py``.
- **Sketch mode** (above the threshold): values spill into DDSketch-style
  log-gamma buckets.  With ``gamma = (1 + e) / (1 - e)`` a positive
  value ``v`` lands in bucket ``ceil(log_gamma(v))`` and is estimated as
  ``2 * gamma**i / (gamma + 1)``, which is within relative error ``e``
  of every value the bucket can hold.  Memory is O(distinct buckets),
  independent of the observation count.

Bucket indices are *absolute* (a function of the value and ``gamma``
only), so :meth:`QuantileSketch.merge` is order-independent: merging
shard A into B yields the same buckets, counts, min/max and quantile
estimates as merging B into A.  Only the floating-point ``total`` can
differ by an ulp across *multi-way* merge orders (float addition is
commutative but not associative); merge shards in a deterministic
order when byte-identical sums matter.

Zeros are counted in a dedicated slot and negative values in a mirrored
bucket map, so the sketch accepts any float the histograms can see.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Tuple

__all__ = [
    "QuantileSketch",
    "DEFAULT_EXACT_THRESHOLD",
    "DEFAULT_RELATIVE_ERROR",
]

#: Observations retained verbatim before spilling to buckets.  4096
#: floats is ~32 KiB — far above anything a figure-scale run produces
#: (so those stay exact) and negligible at cohort scale.
DEFAULT_EXACT_THRESHOLD = 4096

#: Default relative-error bound for sketch-mode quantiles (1%).
DEFAULT_RELATIVE_ERROR = 0.01

#: Arithmetic memory model (see :meth:`QuantileSketch.footprint_bytes`):
#: bytes per retained exact float and per occupied sketch bucket.  These
#: are deliberate *model* constants — a CPython float in a list costs a
#: pointer plus a 24-byte object; a dict slot costs roughly 64 bytes of
#: key/value/index — chosen so footprints are deterministic across
#: platforms rather than ``sys.getsizeof``-exact.
_BYTES_PER_EXACT_VALUE = 32
_BYTES_PER_BUCKET = 64
_FIXED_OVERHEAD = 256


class QuantileSketch:
    """Bounded-memory quantile estimator with an exact small-n mode.

    ``add`` values, read ``count``/``total``/``minimum``/``maximum``/
    ``mean`` and :meth:`percentile`.  ``merge`` folds another sketch in
    (same ``relative_error`` required), enabling cross-cohort and
    cross-shard aggregation without raw-value exchange.
    """

    __slots__ = ("max_exact", "relative_error", "_gamma", "_log_gamma",
                 "count", "total", "minimum", "maximum",
                 "_exact", "_sorted", "_positive", "_negative", "_zeros")

    def __init__(self, max_exact: int = DEFAULT_EXACT_THRESHOLD,
                 relative_error: float = DEFAULT_RELATIVE_ERROR):
        if max_exact < 0:
            raise ValueError("max_exact must be >= 0")
        if not 0.0 < relative_error < 1.0:
            raise ValueError("relative_error must be in (0, 1)")
        self.max_exact = int(max_exact)
        self.relative_error = float(relative_error)
        self._gamma = (1.0 + relative_error) / (1.0 - relative_error)
        self._log_gamma = math.log(self._gamma)
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        #: Raw values while in exact mode; ``None`` once spilled.
        self._exact: List[float] = []
        self._sorted: List[float] = []  # cached sorted view; [] = stale
        self._positive: Dict[int, int] = {}
        self._negative: Dict[int, int] = {}
        self._zeros = 0

    # -- recording ---------------------------------------------------------------

    def add(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if self._exact is not None:
            self._exact.append(value)
            self._sorted = []
            if len(self._exact) > self.max_exact:
                self._spill()
        else:
            self._bucket_add(value, 1)

    def _index(self, magnitude: float) -> int:
        return math.ceil(math.log(magnitude) / self._log_gamma)

    def _bucket_add(self, value: float, n: int) -> None:
        if value > 0.0:
            key = self._index(value)
            self._positive[key] = self._positive.get(key, 0) + n
        elif value < 0.0:
            key = self._index(-value)
            self._negative[key] = self._negative.get(key, 0) + n
        else:
            self._zeros += n

    def _spill(self) -> None:
        """Leave exact mode: fold retained values into buckets."""
        for value in self._exact:
            self._bucket_add(value, 1)
        self._exact = None
        self._sorted = []

    # -- reading -----------------------------------------------------------------

    @property
    def exact(self) -> bool:
        """True while every observation is retained verbatim."""
        return self._exact is not None

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def bucket_count(self) -> int:
        """Occupied sketch buckets (0 while exact)."""
        occupied = len(self._positive) + len(self._negative)
        return occupied + (1 if self._zeros else 0)

    def values(self) -> List[float]:
        """The raw observations in arrival order (exact mode only)."""
        if self._exact is None:
            raise ValueError(
                "sketch spilled past max_exact=%d; raw values are gone "
                "(use percentile()/summary instead)" % self.max_exact)
        return list(self._exact)

    def iter_values(self) -> Iterator[float]:
        """Iterate the raw observations without copying (exact mode)."""
        if self._exact is None:
            raise ValueError(
                "sketch spilled past max_exact=%d; raw values are gone "
                "(use percentile()/summary instead)" % self.max_exact)
        return iter(self._exact)

    def percentile(self, q: float) -> float:
        """The q-th percentile (exact below the threshold, else within
        ``relative_error`` of the true quantile value; 0.0 if empty)."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be within [0, 100]")
        if self.count == 0:
            return 0.0
        if self._exact is not None:
            return self._exact_percentile(q)
        return self._sketch_percentile(q)

    def _exact_percentile(self, q: float) -> float:
        # Same interpolation as repro.analysis.stats.percentile, on a
        # cached sorted view so exposition passes don't re-sort — the
        # float-equality golden test pins the equivalence.
        if not self._sorted:
            self._sorted = sorted(self._exact)
        ordered = self._sorted
        if len(ordered) == 1:
            return float(ordered[0])
        position = (len(ordered) - 1) * q / 100.0
        lower = math.floor(position)
        upper = math.ceil(position)
        if lower == upper:
            return float(ordered[lower])
        weight = position - lower
        return float(ordered[lower] * (1 - weight)
                     + ordered[upper] * weight)

    def _sketch_percentile(self, q: float) -> float:
        # Walk buckets in value order (most-negative first) until the
        # cumulative count covers the target rank, then return the
        # bucket's midpoint estimate clamped into [minimum, maximum].
        target = (self.count - 1) * (q / 100.0)
        cumulative = 0
        estimate = self.maximum
        for value_rank, bucket_count in self._ordered_buckets():
            cumulative += bucket_count
            if cumulative > target:
                estimate = value_rank
                break
        return min(max(estimate, self.minimum), self.maximum)

    def _ordered_buckets(self) -> Iterator[Tuple[float, int]]:
        """(estimate, count) pairs in ascending value order."""
        gamma = self._gamma
        scale = 2.0 / (gamma + 1.0)
        for key in sorted(self._negative, reverse=True):
            yield -(gamma ** key) * scale, self._negative[key]
        if self._zeros:
            yield 0.0, self._zeros
        for key in sorted(self._positive):
            yield (gamma ** key) * scale, self._positive[key]

    def bucket_bounds(self) -> List[Tuple[float, float, int]]:
        """``(lower, upper, count)`` per occupied bucket, ascending.

        Stable across merge order (indices are absolute), which the
        OpenMetrics round-trip tests rely on.  Exact-mode sketches
        report one degenerate ``(v, v, 1)``-style bucket per distinct
        value via a spill-free view.
        """
        gamma = self._gamma
        bounds: List[Tuple[float, float, int]] = []
        if self._exact is not None:
            if not self._sorted:
                self._sorted = sorted(self._exact)
            for value in self._sorted:
                if bounds and bounds[-1][0] == value:
                    lower, upper, count = bounds[-1]
                    bounds[-1] = (lower, upper, count + 1)
                else:
                    bounds.append((value, value, 1))
            return bounds
        for key in sorted(self._negative, reverse=True):
            bounds.append((-(gamma ** key), -(gamma ** (key - 1)),
                           self._negative[key]))
        if self._zeros:
            bounds.append((0.0, 0.0, self._zeros))
        for key in sorted(self._positive):
            bounds.append((gamma ** (key - 1), gamma ** key,
                           self._positive[key]))
        return bounds

    # -- merging -----------------------------------------------------------------

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into this sketch; returns ``self``.

        Exact + exact stays exact when the union fits under
        ``max_exact``; any other combination spills both sides.  The
        resulting buckets, counts, extrema and quantiles are identical
        regardless of merge direction.
        """
        if other.relative_error != self.relative_error:
            raise ValueError(
                "cannot merge sketches with different relative_error "
                f"({self.relative_error} vs {other.relative_error})")
        if other.count == 0:
            return self
        self.count += other.count
        self.total += other.total
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum
        if (self._exact is not None and other._exact is not None
                and len(self._exact) + len(other._exact) <= self.max_exact):
            self._exact.extend(other._exact)
            self._sorted = []
            return self
        if self._exact is not None:
            self._spill()
        if other._exact is not None:
            for value in other._exact:
                self._bucket_add(value, 1)
        else:
            for key, bucket_count in other._positive.items():
                self._positive[key] = \
                    self._positive.get(key, 0) + bucket_count
            for key, bucket_count in other._negative.items():
                self._negative[key] = \
                    self._negative.get(key, 0) + bucket_count
            self._zeros += other._zeros
        return self

    # -- accounting --------------------------------------------------------------

    def footprint_bytes(self) -> int:
        """Deterministic model of resident memory (see module constants).

        An arithmetic model rather than ``sys.getsizeof`` so telemetry
        budgets in manifests and CI gates are platform-stable.
        """
        if self._exact is not None:
            retained = len(self._exact) * _BYTES_PER_EXACT_VALUE
            if self._sorted:
                retained *= 2
            return _FIXED_OVERHEAD + retained
        occupied = len(self._positive) + len(self._negative)
        return _FIXED_OVERHEAD + occupied * _BYTES_PER_BUCKET

    def __repr__(self) -> str:
        mode = "exact" if self.exact else f"sketch:{self.bucket_count}"
        return f"<QuantileSketch n={self.count} {mode}>"
