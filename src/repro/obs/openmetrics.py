"""OpenMetrics text exposition of a :class:`MetricsRegistry`.

:func:`render_openmetrics` serializes counters, gauges, histograms and
time series into the OpenMetrics text format (the Prometheus exposition
dialect with a terminating ``# EOF``), so any standard scraper, promtool
or dashboard can ingest a run:

    # TYPE net_transfers counter
    net_transfers_total 42
    # TYPE net_transfer_duration histogram
    net_transfer_duration_bucket{le="0.001"} 0
    ...
    net_transfer_duration_bucket{le="+Inf"} 42
    net_transfer_duration_count 42
    net_transfer_duration_sum 13.7
    # EOF

Mapping rules (documented in ``docs/OBSERVABILITY.md``):

- dotted metric names become underscored (``net.bytes`` →
  ``net_bytes``); any character outside ``[a-zA-Z0-9_:]`` is replaced;
- counters gain the mandated ``_total`` suffix;
- histograms expose cumulative ``le`` buckets plus ``_count``/``_sum``;
- time series expose their **last** sample as a labelled gauge (the
  full series lives in the run manifest's digests, not the exposition).

:func:`parse_openmetrics` reads the same format back — enough for the
round-trip test and for diffing expositions from other tools.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, NamedTuple, Tuple

from .metrics import MetricsRegistry

__all__ = ["render_openmetrics", "render_histogram", "parse_openmetrics",
           "MetricFamily", "Sample"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LINE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_RE = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"]*)"')


def metric_name(dotted: str) -> str:
    """An OpenMetrics-safe name for a dotted metric name."""
    return _NAME_RE.sub("_", dotted)


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labelled(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return name
    inner = ",".join(f'{metric_name(k)}="{_escape(v)}"' for k, v in labels)
    return f"{name}{{{inner}}}"


def render_openmetrics(registry: MetricsRegistry) -> str:
    """The registry's current state as OpenMetrics text."""
    lines: List[str] = []

    for name, value in sorted(registry.counters.counters().items()):
        safe = metric_name(name)
        lines.append(f"# TYPE {safe} counter")
        lines.append(f"{safe}_total {_format_value(value)}")

    for name, value in sorted(registry.counters.gauges().items()):
        safe = metric_name(name)
        lines.append(f"# TYPE {safe} gauge")
        lines.append(f"{safe} {_format_value(value)}")

    for name, histogram in sorted(registry.histograms().items()):
        lines.extend(_histogram_lines(histogram))

    seen_series = set()
    for series in registry.series():
        safe = metric_name(series.name)
        if safe not in seen_series:
            seen_series.add(safe)
            lines.append(f"# TYPE {safe} gauge")
        lines.append(
            f"{_labelled(safe, series.labels)} {_format_value(series.last)}"
        )

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _histogram_lines(histogram) -> List[str]:
    safe = metric_name(histogram.name)
    lines = [f"# TYPE {safe} histogram"]
    if histogram.unit:
        lines.append(f"# UNIT {safe} {histogram.unit}")
    for bound, cumulative in histogram.cumulative_buckets():
        le = "+Inf" if math.isinf(bound) else _format_value(bound)
        lines.append(f'{safe}_bucket{{le="{le}"}} {cumulative}')
    lines.append(f"{safe}_count {histogram.count}")
    lines.append(f"{safe}_sum {_format_value(histogram.total)}")
    return lines


def render_histogram(histogram) -> str:
    """One histogram as a standalone OpenMetrics document.

    Exposition depends only on the fixed bucket layout and cumulative
    counts — never on whether the backing sketch is in exact or
    spilled mode, or on the order shard histograms were merged in — so
    the text is stable across cohort merge orders (pinned by the
    round-trip tests).
    """
    return "\n".join(_histogram_lines(histogram) + ["# EOF"]) + "\n"


class Sample(NamedTuple):
    """One exposition line: name (with suffix), labels, value."""

    name: str
    labels: Dict[str, str]
    value: float


class MetricFamily(NamedTuple):
    """A ``# TYPE`` group and the samples under it."""

    name: str
    type: str
    samples: List[Sample]

    def value(self, suffix: str = "", **labels: str) -> float:
        """The value of the sample ``name+suffix`` with exactly ``labels``."""
        wanted = self.name + suffix
        for sample in self.samples:
            if sample.name == wanted and sample.labels == labels:
                return sample.value
        raise KeyError(f"no sample {wanted!r} with labels {labels!r}")


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def parse_openmetrics(text: str) -> Dict[str, MetricFamily]:
    """Parse OpenMetrics text into families keyed by metric name.

    Supports the subset :func:`render_openmetrics` emits (``# TYPE``,
    ``# UNIT``, samples with optional labels, ``# EOF``); raises
    ``ValueError`` on lines that match none of these.
    """
    families: Dict[str, MetricFamily] = {}
    current: MetricFamily = None
    saw_eof = False
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if saw_eof:
            raise ValueError(f"line {line_number}: content after # EOF")
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, family_type = rest.partition(" ")
            current = MetricFamily(name=name, type=family_type.strip(),
                                   samples=[])
            families[name] = current
            continue
        if line.startswith("# UNIT ") or line.startswith("# HELP "):
            continue
        if line.startswith("#"):
            continue  # comments are legal exposition content
        match = _LINE_RE.match(line)
        if match is None:
            raise ValueError(f"line {line_number}: unparseable: {raw!r}")
        labels = {
            m.group("key"): m.group("value")
            for m in _LABEL_RE.finditer(match.group("labels") or "")
        }
        sample = Sample(name=match.group("name"), labels=labels,
                        value=_parse_value(match.group("value")))
        if current is None or not sample.name.startswith(current.name):
            # A sample with no preceding TYPE: give it its own family.
            current = MetricFamily(name=sample.name, type="untyped",
                                   samples=[])
            families[sample.name] = current
        current.samples.append(sample)
    if not saw_eof:
        raise ValueError("missing # EOF terminator")
    return families
