"""A typed publish/subscribe event bus.

The bus is the repo's instrumentation spine: every layer (network,
IPFS, directory, protocol roles) publishes :mod:`~repro.obs.events`
dataclasses to it, and every consumer — telemetry, counters, trace
exporters, tests — is a subscriber.  Producers and consumers never see
each other.

Performance contract: **zero overhead when unsubscribed**.  Dispatch is
by exact event type (one dict lookup, no MRO walk), and emission sites
in hot paths guard event *construction* behind :meth:`EventBus.wants`,
so a run with no subscribers pays one attribute load and one boolean
check per site.

Scale contract: **deterministic sampling of the firehose**.  At
10^4-10^5 participants the per-transfer and per-request event families
dominate the event count.  A :class:`SamplingPolicy` thins them at the
*producer* (the emission site asks :meth:`EventBus.admits` before
constructing the event), keyed by a SHA-256 of the event's identity
fields — so the admitted subset is a pure function of the run's seed
and configuration, and a seeded replay publishes a byte-identical
stream.  Only the families in :data:`SAMPLED_EVENT_FAMILIES` may be
sampled; everything the invariant monitors and telemetry collector
consume stays exact (the disjointness is pinned by
``tests/test_obs_progress.py``).
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Optional, Type

from .events import (
    CohortLoadApplied,
    DirectoryRequest,
    Event,
    TransferCompleted,
    TransferStarted,
)

__all__ = [
    "EventBus",
    "Subscription",
    "SamplingPolicy",
    "SAMPLED_EVENT_FAMILIES",
    "sample_key",
]

Handler = Callable[[Event], None]

#: Dispatch key for subscribe-to-everything handlers.
_ALL = object()

#: The high-volume event families a :class:`SamplingPolicy` may thin.
#: Deliberately closed: these are exactly the families *no* exact
#: consumer depends on — the invariant monitors' byte-conservation
#: reads ``BlockFetched``/``BytesReceived``, the telemetry collector
#: reads ``PROTOCOL_EVENTS``, and the flight recorder's default window
#: excludes all of them — so sampling here is a pre-sample tap for
#: every exactness contract.
SAMPLED_EVENT_FAMILIES = (
    TransferStarted,
    TransferCompleted,
    DirectoryRequest,
    CohortLoadApplied,
)

_KEY_SPACE = 1 << 64


def sample_key(*parts: object) -> int:
    """Deterministic 64-bit key from identity fields.

    SHA-256 over the ``\\x1f``-joined string forms of ``parts`` (e.g.
    ``(iteration, partition, node)``), truncated to the first 8 bytes.
    Pure function of its inputs: the same transfer in a seeded replay
    maps to the same key, so sampling decisions replay byte-identically.
    """
    joined = "\x1f".join(str(part) for part in parts)
    digest = hashlib.sha256(joined.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class SamplingPolicy:
    """Per-family deterministic admission rates for firehose events.

    ``rates`` maps an event type from :data:`SAMPLED_EVENT_FAMILIES` to
    an admission probability in ``(0, 1]``.  An event is admitted when
    ``sample_key(family, *identity) < rate * 2**64`` — a keyed hash
    threshold, not an RNG, so admission is stable across runs, replays
    and processes.
    """

    __slots__ = ("rates",)

    def __init__(self, rates: Dict[Type[Event], float]):
        for event_type, rate in rates.items():
            if event_type not in SAMPLED_EVENT_FAMILIES:
                raise ValueError(
                    f"{event_type.__name__} is not a samplable family; "
                    "exact consumers depend on it")
            if not 0.0 < rate <= 1.0:
                raise ValueError(
                    f"sample rate for {event_type.__name__} must be in "
                    f"(0, 1], got {rate}")
        self.rates = dict(rates)

    @classmethod
    def firehose(cls, rate: float) -> "SamplingPolicy":
        """Sample every samplable family at the same ``rate``."""
        return cls({family: rate for family in SAMPLED_EVENT_FAMILIES})

    def admits(self, event_type: Type[Event], *key: object) -> bool:
        """Whether the event identified by ``key`` should be published."""
        rate = self.rates.get(event_type)
        if rate is None or rate >= 1.0:
            return True
        threshold = int(rate * _KEY_SPACE)
        return sample_key(event_type.__name__, *key) < threshold

    def describe(self) -> Dict[str, float]:
        """Stable name -> rate mapping for fingerprints/manifests."""
        return {event_type.__name__: rate
                for event_type, rate in sorted(
                    self.rates.items(), key=lambda item: item[0].__name__)}

    def __repr__(self) -> str:
        inner = ",".join(f"{name}={rate}"
                         for name, rate in self.describe().items())
        return f"<SamplingPolicy {inner}>"


class Subscription:
    """A handle returned by :meth:`EventBus.subscribe`; cancel to stop
    receiving events.  Usable as a context manager."""

    __slots__ = ("_bus", "_keys", "_handler", "active")

    def __init__(self, bus: "EventBus", keys, handler: Handler):
        self._bus = bus
        self._keys = keys
        self._handler = handler
        self.active = True

    def cancel(self) -> None:
        """Detach the handler; safe to call more than once."""
        if not self.active:
            return
        self.active = False
        self._bus._remove(self._keys, self._handler)

    # Alias so subscribers read naturally as resources.
    close = cancel

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc_info) -> None:
        self.cancel()


class EventBus:
    """Exact-type pub/sub dispatch for :class:`~repro.obs.events.Event`."""

    __slots__ = ("_handlers", "_has_all", "sampling", "events_published",
                 "profiler")

    def __init__(self, sampling: Optional[SamplingPolicy] = None):
        self._handlers: Dict[object, List[Handler]] = {}
        self._has_all = False
        #: Optional producer-side thinning of the firehose families;
        #: ``None`` (the default) admits everything.
        self.sampling = sampling
        #: Events actually dispatched to at least one handler.
        self.events_published = 0
        #: Optional :class:`~repro.obs.profiling.HostProfiler` hook;
        #: when set, every handler call is timed under an
        #: ``obs.subscriber.<Owner>`` scope.  ``None`` (the default)
        #: costs one attribute load and one branch per publish.
        self.profiler = None

    # -- subscription ----------------------------------------------------------

    def subscribe(self, handler: Handler,
                  *event_types: Type[Event]) -> Subscription:
        """Deliver every published event of the given types to ``handler``.

        With no ``event_types``, the handler receives *all* events.
        Returns a :class:`Subscription`; cancel it to detach.
        """
        keys = list(event_types) if event_types else [_ALL]
        for key in keys:
            self._handlers.setdefault(key, []).append(handler)
        self._has_all = _ALL in self._handlers
        return Subscription(self, keys, handler)

    def _remove(self, keys, handler: Handler) -> None:
        for key in keys:
            handlers = self._handlers.get(key)
            if handlers is None:
                continue
            try:
                handlers.remove(handler)
            except ValueError:
                pass
            if not handlers:
                del self._handlers[key]
        self._has_all = _ALL in self._handlers

    # -- introspection ----------------------------------------------------------

    @property
    def active(self) -> bool:
        """True when at least one subscription exists."""
        return bool(self._handlers)

    def wants(self, event_type: Type[Event]) -> bool:
        """True when publishing ``event_type`` would reach a handler.

        Hot emission sites call this *before constructing* the event, so
        an unobserved run never allocates event objects.
        """
        return self._has_all or event_type in self._handlers

    def admits(self, event_type: Type[Event], *key: object) -> bool:
        """Whether the sampling policy admits this event identity.

        Always true without a policy.  Emission sites for the firehose
        families call ``wants() and admits()`` so an admitted-out event
        is, like an unwatched one, never constructed.
        """
        sampling = self.sampling
        return sampling is None or sampling.admits(event_type, *key)

    # -- publishing --------------------------------------------------------------

    def publish(self, event: Event) -> None:
        """Dispatch ``event`` to its type's handlers, then wildcards.

        Handlers subscribed to both see the event once per matching
        registration; handler exceptions propagate to the publisher (a
        broken subscriber should fail loudly, not corrupt telemetry
        silently).
        """
        handlers = self._handlers
        if not handlers:
            return
        self.events_published += 1
        if self.profiler is not None:
            self._publish_profiled(event)
            return
        typed = handlers.get(type(event))
        if typed:
            # Copy: a handler may unsubscribe (itself or others) mid-dispatch.
            for handler in tuple(typed):
                handler(event)
        if self._has_all:
            for handler in tuple(handlers[_ALL]):
                handler(event)

    def _publish_profiled(self, event: Event) -> None:
        """Same dispatch order as :meth:`publish`, with every handler
        call timed under an ``obs.subscriber.<Owner>`` scope — this is
        what prices the overhead budgets component-wise."""
        profiler = self.profiler
        handlers = self._handlers
        typed = handlers.get(type(event))
        if typed:
            for handler in tuple(typed):
                frame = profiler.begin(
                    "obs", "subscriber", profiler.subscriber_name(handler))
                try:
                    handler(event)
                finally:
                    profiler.end(frame)
        if self._has_all:
            for handler in tuple(handlers[_ALL]):
                frame = profiler.begin(
                    "obs", "subscriber", profiler.subscriber_name(handler))
                try:
                    handler(event)
                finally:
                    profiler.end(frame)
