"""A typed publish/subscribe event bus.

The bus is the repo's instrumentation spine: every layer (network,
IPFS, directory, protocol roles) publishes :mod:`~repro.obs.events`
dataclasses to it, and every consumer — telemetry, counters, trace
exporters, tests — is a subscriber.  Producers and consumers never see
each other.

Performance contract: **zero overhead when unsubscribed**.  Dispatch is
by exact event type (one dict lookup, no MRO walk), and emission sites
in hot paths guard event *construction* behind :meth:`EventBus.wants`,
so a run with no subscribers pays one attribute load and one boolean
check per site.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Type

from .events import Event

__all__ = ["EventBus", "Subscription"]

Handler = Callable[[Event], None]

#: Dispatch key for subscribe-to-everything handlers.
_ALL = object()


class Subscription:
    """A handle returned by :meth:`EventBus.subscribe`; cancel to stop
    receiving events.  Usable as a context manager."""

    __slots__ = ("_bus", "_keys", "_handler", "active")

    def __init__(self, bus: "EventBus", keys, handler: Handler):
        self._bus = bus
        self._keys = keys
        self._handler = handler
        self.active = True

    def cancel(self) -> None:
        """Detach the handler; safe to call more than once."""
        if not self.active:
            return
        self.active = False
        self._bus._remove(self._keys, self._handler)

    # Alias so subscribers read naturally as resources.
    close = cancel

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc_info) -> None:
        self.cancel()


class EventBus:
    """Exact-type pub/sub dispatch for :class:`~repro.obs.events.Event`."""

    __slots__ = ("_handlers", "_has_all")

    def __init__(self):
        self._handlers: Dict[object, List[Handler]] = {}
        self._has_all = False

    # -- subscription ----------------------------------------------------------

    def subscribe(self, handler: Handler,
                  *event_types: Type[Event]) -> Subscription:
        """Deliver every published event of the given types to ``handler``.

        With no ``event_types``, the handler receives *all* events.
        Returns a :class:`Subscription`; cancel it to detach.
        """
        keys = list(event_types) if event_types else [_ALL]
        for key in keys:
            self._handlers.setdefault(key, []).append(handler)
        self._has_all = _ALL in self._handlers
        return Subscription(self, keys, handler)

    def _remove(self, keys, handler: Handler) -> None:
        for key in keys:
            handlers = self._handlers.get(key)
            if handlers is None:
                continue
            try:
                handlers.remove(handler)
            except ValueError:
                pass
            if not handlers:
                del self._handlers[key]
        self._has_all = _ALL in self._handlers

    # -- introspection ----------------------------------------------------------

    @property
    def active(self) -> bool:
        """True when at least one subscription exists."""
        return bool(self._handlers)

    def wants(self, event_type: Type[Event]) -> bool:
        """True when publishing ``event_type`` would reach a handler.

        Hot emission sites call this *before constructing* the event, so
        an unobserved run never allocates event objects.
        """
        return self._has_all or event_type in self._handlers

    # -- publishing --------------------------------------------------------------

    def publish(self, event: Event) -> None:
        """Dispatch ``event`` to its type's handlers, then wildcards.

        Handlers subscribed to both see the event once per matching
        registration; handler exceptions propagate to the publisher (a
        broken subscriber should fail loudly, not corrupt telemetry
        silently).
        """
        handlers = self._handlers
        if not handlers:
            return
        typed = handlers.get(type(event))
        if typed:
            # Copy: a handler may unsubscribe (itself or others) mid-dispatch.
            for handler in tuple(typed):
                handler(event)
        if self._has_all:
            for handler in tuple(handlers[_ALL]):
                handler(event)
