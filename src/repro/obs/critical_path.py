"""Critical-path decomposition of the per-iteration aggregation delay.

The paper's delay figures (Figs. 1-2) sum phase totals; this module
walks one iteration's :class:`~repro.obs.spans.SpanTree` *backwards*
from the last global-update registration to the upload wave that bounded
it, producing the slowest causal chain:

    upload -> gradient registration -> collect (wait / download /
    aggregate) -> sync -> publish_update

Each :class:`CriticalStep` is a contiguous segment of that chain, so the
step durations telescope: their sum equals the path length exactly, and
the ``collect.download`` segment is directly comparable to the
closed forms in :mod:`repro.analysis.delays` (the golden test pins them
float-equal on the Fig. 1 configuration).

:class:`StragglerReport` ranks every trainer, content provider and
aggregator by *slack* — how long before the phase's last finisher it
finished.  Slack 0 is the straggler that bounded the phase; anything
within ``threshold`` sim-seconds of it is flagged as near-critical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Union

from .spans import Span, SpanCollector, SpanTree

__all__ = [
    "CriticalStep",
    "CriticalPath",
    "StragglerEntry",
    "StragglerReport",
    "CriticalPathAnalyzer",
]


@dataclass(frozen=True)
class CriticalStep:
    """One contiguous segment of the critical chain."""

    name: str
    node: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class CriticalPath:
    """The slowest causal chain of one iteration.

    Steps are contiguous (each starts where the previous ended), so
    ``sum(step.duration) == length``.
    """

    iteration: int
    steps: List[CriticalStep] = field(default_factory=list)

    @property
    def start(self) -> float:
        return self.steps[0].start

    @property
    def end(self) -> float:
        return self.steps[-1].end

    @property
    def length(self) -> float:
        return self.end - self.start

    def segment(self, name: str) -> Optional[CriticalStep]:
        """The first step with this name, if it is on the path."""
        for step in self.steps:
            if step.name == name:
                return step
        return None

    def phase_lengths(self) -> Dict[str, float]:
        """Per-step-name time along the path (sums to :attr:`length`)."""
        lengths: Dict[str, float] = {}
        for step in self.steps:
            lengths[step.name] = lengths.get(step.name, 0.0) + step.duration
        return lengths

    def format(self) -> str:
        """A human-readable table of the chain."""
        lines = [
            f"iteration {self.iteration} critical path "
            f"({self.length:.3f} s):"
        ]
        for step in self.steps:
            lines.append(
                f"  {step.name:<18} {step.node:<14} "
                f"{step.start:>10.3f} -> {step.end:>10.3f}  "
                f"(+{step.duration:.3f} s)"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class StragglerEntry:
    """One participant's finishing position within its phase."""

    name: str
    role: str  # "trainer" | "provider" | "aggregator"
    finished_at: float
    slack: float
    is_straggler: bool


@dataclass(frozen=True)
class StragglerReport:
    """Per-role slack ranking for one iteration.

    Entries are sorted by slack ascending: the phase-bounding
    participant (slack 0) first.
    """

    iteration: int
    threshold: float
    entries: List[StragglerEntry] = field(default_factory=list)

    @property
    def stragglers(self) -> List[StragglerEntry]:
        return [entry for entry in self.entries if entry.is_straggler]

    def for_role(self, role: str) -> List[StragglerEntry]:
        return [entry for entry in self.entries if entry.role == role]

    def format(self) -> str:
        lines = [
            f"iteration {self.iteration} stragglers "
            f"(threshold {self.threshold:.3f} s):"
        ]
        for entry in self.entries:
            marker = " <-- straggler" if entry.is_straggler else ""
            lines.append(
                f"  {entry.role:<10} {entry.name:<14} "
                f"finished {entry.finished_at:>10.3f}  "
                f"slack {entry.slack:>8.3f}{marker}"
            )
        return "\n".join(lines)


SpanSource = Union[SpanCollector, SpanTree, Mapping[int, SpanTree]]


class CriticalPathAnalyzer:
    """Derives critical paths and straggler rankings from span trees.

    ``source`` is a live :class:`SpanCollector`, a single
    :class:`SpanTree`, or a mapping ``iteration -> SpanTree`` (e.g. a
    replay).  Analysis is read-only and repeatable.
    """

    def __init__(self, source: SpanSource):
        self._source = source

    # -- tree resolution ---------------------------------------------------

    def tree(self, iteration: int) -> Optional[SpanTree]:
        source = self._source
        if isinstance(source, SpanCollector):
            return source.tree(iteration)
        if isinstance(source, SpanTree):
            return source if source.iteration == iteration else None
        return source.get(iteration)

    def iterations(self) -> List[int]:
        source = self._source
        if isinstance(source, SpanCollector):
            return sorted(source.trees)
        if isinstance(source, SpanTree):
            return [source.iteration]
        return sorted(source)

    # -- critical path -----------------------------------------------------

    def analyze(self, iteration: int) -> Optional[CriticalPath]:
        """The slowest causal chain of ``iteration`` (None if the round
        left no aggregation spans)."""
        tree = self.tree(iteration)
        if tree is None:
            return None

        sink = self._sink(tree)
        if sink is None:
            return None
        aggregator = sink.node
        collect = self._collect_of(tree, aggregator)

        steps: List[CriticalStep] = []
        cursor: Optional[float] = None

        register = self._binding_register(tree, collect)
        if register is not None:
            upload = register.parent
            if upload is not None and upload.name == "upload":
                steps.append(CriticalStep(
                    "upload", upload.node, upload.start, register.end
                ))
            cursor = register.end
        elif collect is not None:
            cursor = collect.start

        if collect is not None:
            cursor = self._expand_collect(steps, collect, cursor)

        sync = self._sync_of(tree, aggregator)
        if sync is not None and cursor is not None and sync.end > cursor:
            steps.append(CriticalStep("sync", aggregator, cursor, sync.end))
            cursor = sync.end

        if sink.name == "publish_update":
            start = sink.start if cursor is None else cursor
            if sink.end > start:
                steps.append(CriticalStep(
                    "publish_update", aggregator, start, sink.end
                ))

        if not steps:
            return None
        return CriticalPath(iteration=iteration, steps=steps)

    # -- stragglers --------------------------------------------------------

    def straggler_report(self, iteration: int,
                         threshold: float = 0.0
                         ) -> Optional[StragglerReport]:
        """Slack ranking of trainers, providers and aggregators.

        ``threshold`` is in simulated seconds: a participant is flagged
        when it finished within ``threshold`` of its phase's last
        finisher (the bounding participant always has slack 0).
        """
        tree = self.tree(iteration)
        if tree is None:
            return None
        entries: List[StragglerEntry] = []
        entries += self._rank(
            "trainer",
            self._last_by(tree.named("register"),
                          key=lambda span: span.node),
            threshold,
        )
        # Providers are ranked by the gradient fetches they served (the
        # collection phase); update downloads to trainers are excluded.
        collect_fetches = [
            span for span in tree.named("fetch")
            if span.parent is not None and span.parent.name == "collect"
        ]
        entries += self._rank(
            "provider",
            self._last_by(collect_fetches,
                          key=lambda span: str(span.meta.get("provider"))),
            threshold,
        )
        entries += self._rank(
            "aggregator",
            self._last_by(tree.named("collect"),
                          key=lambda span: span.node),
            threshold,
        )
        entries.sort(key=lambda entry: (entry.slack, entry.role, entry.name))
        return StragglerReport(
            iteration=iteration, threshold=threshold, entries=entries
        )

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _sink(tree: SpanTree) -> Optional[Span]:
        """The chain's endpoint: the last global-update registration,
        falling back to the last collection when no update published."""
        publishes = tree.named("publish_update")
        if publishes:
            return max(publishes, key=lambda span: span.end)
        collects = tree.named("collect")
        if collects:
            return max(collects, key=lambda span: span.end)
        return None

    @staticmethod
    def _collect_of(tree: SpanTree, aggregator: str) -> Optional[Span]:
        collects = tree.spans(name="collect", node=aggregator)
        if not collects:
            return None
        return max(collects, key=lambda span: span.end)

    @staticmethod
    def _sync_of(tree: SpanTree, aggregator: str) -> Optional[Span]:
        syncs = tree.spans(name="sync", node=aggregator)
        if not syncs:
            return None
        return max(syncs, key=lambda span: span.end)

    @staticmethod
    def _binding_register(tree: SpanTree,
                          collect: Optional[Span]) -> Optional[Span]:
        """The registration the collection actually waited for: the
        latest one of the collect's partition not after its end."""
        registers = tree.named("register")
        if collect is not None:
            if collect.partition_id is not None:
                registers = [
                    span for span in registers
                    if span.partition_id == collect.partition_id
                ]
            registers = [
                span for span in registers if span.end <= collect.end
            ]
        if not registers:
            return None
        return max(registers, key=lambda span: span.end)

    @staticmethod
    def _expand_collect(steps: List[CriticalStep], collect: Span,
                        cursor: Optional[float]) -> float:
        """Split the collect hop on its binding download, appending
        ``collect.wait`` / ``collect.download`` / ``collect.aggregate``
        segments (zero-length segments are elided)."""
        prev = collect.start if cursor is None else cursor
        fetches = [
            child for child in collect.children
            if child.name == "fetch" and child.end <= collect.end
        ]
        binding = (max(fetches, key=lambda span: span.end)
                   if fetches else None)
        if binding is None:
            if collect.end > prev:
                steps.append(CriticalStep(
                    "collect", collect.node, prev, collect.end
                ))
            return max(prev, collect.end)
        download_start = max(prev, binding.start)
        if download_start > prev:
            steps.append(CriticalStep(
                "collect.wait", collect.node, prev, download_start
            ))
        if binding.end > download_start:
            steps.append(CriticalStep(
                "collect.download", collect.node, download_start, binding.end
            ))
        tail = max(download_start, binding.end)
        if collect.end > tail:
            steps.append(CriticalStep(
                "collect.aggregate", collect.node, tail, collect.end
            ))
        return max(tail, collect.end)

    @staticmethod
    def _last_by(spans: List[Span], key) -> Dict[str, float]:
        last: Dict[str, float] = {}
        for span in spans:
            name = key(span)
            if name not in last or span.end > last[name]:
                last[name] = span.end
        return last

    @staticmethod
    def _rank(role: str, finished: Dict[str, float],
              threshold: float) -> List[StragglerEntry]:
        if not finished:
            return []
        latest = max(finished.values())
        return [
            StragglerEntry(
                name=name, role=role, finished_at=at,
                slack=latest - at,
                is_straggler=(latest - at) <= threshold,
            )
            for name, at in finished.items()
        ]
