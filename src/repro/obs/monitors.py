"""Online invariant monitors: correctness checks as a bus subscriber.

The event stream is rich enough to *re-derive* what the protocol claims
to have done and cross-check it against what the substrate reports.
:class:`InvariantMonitors` subscribes to the protocol-relevant event
types (not the per-chunk transfer firehose, which it has no invariant
for — keeping the audited hot path within the metrics overhead budget)
and enforces, while the run is still going:

- **clock-monotonic** — monitored events are published in
  non-decreasing simulated time (the bus has no buffering; out-of-order
  timestamps mean a producer stamped the wrong clock).
- **iteration-monotonic** — :class:`~repro.obs.events.IterationStarted`
  numbers strictly increase, and no participant emits an event for an
  iteration older than the last one it was seen in.
- **protocol-ordering** — Algorithm 1's causal order per iteration:
  a trainer's gradients register before its upload completes, an
  aggregator aggregates before it registers an update, sync-phase
  events nest inside a started sync phase, a trainer completes only
  after it uploaded.
- **byte-conservation** — the per-round download volume a participant
  reports (:class:`~repro.obs.events.BytesReceived`) must equal the sum
  of its :class:`~repro.obs.events.BlockFetched` sizes for that round.
- **commitment-consistency** — the directory's accumulated commitment
  (:class:`~repro.obs.events.CommitmentAccumulated`) must equal the
  product of the individual contributions, recomputed independently,
  and the ``expected_commitment`` used at verification time
  (:class:`~repro.obs.events.UpdateVerified`) must match that product.
- **blockstore-leak** (end of run, via :meth:`finalize`) — every object
  stored on IPFS must eventually be fetched, consumed by a
  merge-and-download, garbage-collected, or be a sealed snapshot;
  anything else is storage the protocol paid for and never used.

Each violation is recorded on :attr:`violations` *and* republished as an
:class:`~repro.obs.events.InvariantViolated` event, so counters, traces
and the forensics flight recorder pick it up with no extra wiring.  The
monitors publish only ``InvariantViolated`` and ignore their own events,
so no recursion is possible.

The zero-subscriber overhead contract is untouched: monitors are an
ordinary subscriber; a run without them pays the same single boolean
check per emission site as before.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

from .bus import EventBus, Subscription
from .events import (
    BlockEvicted,
    BlockFetched,
    BlockStored,
    BytesReceived,
    CommitmentAccumulated,
    Event,
    GradientRegistered,
    GradientsAggregated,
    InvariantViolated,
    IterationStarted,
    MergeServed,
    PartialUpdateRegistered,
    SnapshotSealed,
    SyncPhaseEnded,
    SyncPhaseStarted,
    TrainerCompleted,
    UpdateRegistered,
    UpdateVerified,
    UploadCompleted,
)

__all__ = ["InvariantMonitors", "ACTOR_FIELDS"]

#: Which attribute names the acting participant for iteration-scoped
#: events (used for per-actor iteration monotonicity).  Events without
#: a single actor (verification outcomes, directory bookkeeping) are
#: deliberately absent.
ACTOR_FIELDS = {
    GradientRegistered: "uploader",
    UploadCompleted: "trainer",
    TrainerCompleted: "trainer",
    GradientsAggregated: "aggregator",
    UpdateRegistered: "aggregator",
    PartialUpdateRegistered: "aggregator",
    SyncPhaseStarted: "aggregator",
    SyncPhaseEnded: "aggregator",
    BytesReceived: "participant",
}

#: Tolerance for float byte accounting.
_BYTES_TOL = 1e-6
#: Timestamps may only regress by this much (guards float noise).
_CLOCK_TOL = 1e-9
#: How many leaked CIDs a single leak violation names explicitly.
_LEAK_SAMPLE = 8


class InvariantMonitors:
    """A wildcard bus subscriber enforcing the invariant catalog.

    Attach before the run, call :meth:`finalize` after it::

        recorder = FlightRecorder(session.sim.bus)   # first: sees windows
        monitors = InvariantMonitors(session.sim.bus)
        session.run(rounds=2)
        violations = monitors.finalize()
        assert not violations

    (When pairing with a :class:`~repro.obs.forensics.FlightRecorder`,
    subscribe the recorder *first* so its ring buffer already holds the
    triggering event when a nested ``InvariantViolated`` reaches it.)

    Exactness under bus-level sampling: every event family the monitors
    consume (byte conservation reads ``BlockFetched``/``BytesReceived``,
    never the transfer firehose) is outside
    :data:`~repro.obs.bus.SAMPLED_EVENT_FAMILIES`, so a
    :class:`~repro.obs.bus.SamplingPolicy` acts as a pre-sample tap:
    the monitors see the full stream and their checks stay exact at any
    sample rate (disjointness pinned by ``tests/test_obs_progress.py``).
    """

    def __init__(self, bus: EventBus):
        self.bus = bus
        #: Every violation caught, in detection order.
        self.violations: List[InvariantViolated] = []
        #: Events inspected (for progress/coverage reporting).
        self.events_checked = 0
        self._finalized = False

        # clock / iteration monotonicity
        self._last_at = float("-inf")
        self._last_iteration: Optional[int] = None
        self._actor_iteration: Dict[str, int] = {}

        # protocol ordering (per open iteration)
        self._open_iteration: Optional[int] = None
        self._registered: Set[str] = set()       # trainers with gradients in
        self._uploaded: Set[str] = set()         # trainers past UploadCompleted
        self._aggregated: Set[str] = set()       # aggregators past collection
        self._sync_open: Set[str] = set()        # aggregators in sync phase

        # byte conservation (per open iteration)
        self._fetched_bytes: Dict[str, float] = {}

        # commitment consistency: the merged per-(partition, iteration)
        # product gates UpdateVerified; the shard-keyed products gate
        # each accumulator's own running value (shard None = the single
        # well-known server, where the two coincide).
        self._products: Dict[Tuple[int, int], Tuple[object, int]] = {}
        self._shard_products: Dict[
            Tuple[int, int, Optional[str]], Tuple[object, int]
        ] = {}

        # blockstore leak accounting (whole session, object granularity)
        self._stored: Dict[str, str] = {}        # cid -> storing node
        self._consumed: Set[str] = set()
        self._sealed: Set[str] = set()

        self._dispatch = {
            IterationStarted: self._on_iteration_started,
            GradientRegistered: self._on_gradient_registered,
            UploadCompleted: self._on_upload_completed,
            GradientsAggregated: self._on_gradients_aggregated,
            UpdateRegistered: self._on_update_registered,
            SyncPhaseStarted: self._on_sync_started,
            SyncPhaseEnded: self._on_sync_ended,
            PartialUpdateRegistered: self._on_partial_registered,
            TrainerCompleted: self._on_trainer_completed,
            BlockFetched: self._on_block_fetched,
            BytesReceived: self._on_bytes_received,
            CommitmentAccumulated: self._on_commitment_accumulated,
            UpdateVerified: self._on_update_verified,
            BlockStored: self._on_block_stored,
            MergeServed: self._on_merge_served,
            BlockEvicted: self._on_block_evicted,
            SnapshotSealed: self._on_snapshot_sealed,
        }
        self._subscription: Subscription = bus.subscribe(
            self._handle, *self._dispatch.keys()
        )

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Detach from the bus (violations stay available)."""
        self._subscription.cancel()

    def finalize(self) -> List[InvariantViolated]:
        """Run end-of-session checks (blockstore leaks) and detach.

        Idempotent; returns every violation of the whole run.
        """
        if not self._finalized:
            self._finalized = True
            self._check_leaks()
            self.close()
        return self.violations

    @property
    def clean(self) -> bool:
        return not self.violations

    # -- violation plumbing ------------------------------------------------------

    def _violate(self, at: float, invariant: str, subject: str,
                 detail: str, iteration: int = -1) -> None:
        event = InvariantViolated(
            at=at, iteration=iteration, invariant=invariant,
            subject=subject, detail=detail,
        )
        self.violations.append(event)
        self.bus.publish(event)

    # -- dispatch ----------------------------------------------------------------

    def _handle(self, event: Event) -> None:
        if isinstance(event, InvariantViolated):
            return  # our own output (or a peer monitor's): never re-checked
        self.events_checked += 1
        at = getattr(event, "at", None)
        if at is not None:
            if at < self._last_at - _CLOCK_TOL:
                self._violate(
                    at, "clock-monotonic", type(event).__name__,
                    f"event at t={at:.6f} after one at "
                    f"t={self._last_at:.6f}",
                )
            self._last_at = max(self._last_at, at)
        actor_field = ACTOR_FIELDS.get(type(event))
        if actor_field is not None:
            actor = getattr(event, actor_field)
            iteration = event.iteration
            last = self._actor_iteration.get(actor)
            if last is not None and iteration < last:
                self._violate(
                    event.at, "iteration-monotonic", actor,
                    f"{type(event).__name__} for iteration {iteration} "
                    f"after {actor} was seen in iteration {last}",
                    iteration=iteration,
                )
            else:
                self._actor_iteration[actor] = iteration
        handler = self._dispatch.get(type(event))
        if handler is not None:
            handler(event)

    # -- iteration boundaries ----------------------------------------------------

    def _on_iteration_started(self, event: IterationStarted) -> None:
        if self._last_iteration is not None \
                and event.iteration <= self._last_iteration:
            self._violate(
                event.at, "iteration-monotonic", "session",
                f"IterationStarted {event.iteration} after "
                f"{self._last_iteration}",
                iteration=event.iteration,
            )
        self._last_iteration = event.iteration
        self._open_iteration = event.iteration
        self._registered = set()
        self._uploaded = set()
        self._aggregated = set()
        self._sync_open = set()
        self._fetched_bytes = {}

    # -- protocol ordering -------------------------------------------------------

    def _ordering(self, event, subject: str, detail: str) -> None:
        self._violate(event.at, "protocol-ordering", subject, detail,
                      iteration=event.iteration)

    def _on_gradient_registered(self, event: GradientRegistered) -> None:
        self._registered.add(event.uploader)

    def _on_upload_completed(self, event: UploadCompleted) -> None:
        if event.trainer not in self._registered:
            self._ordering(
                event, event.trainer,
                "UploadCompleted without a prior GradientRegistered "
                "from this trainer",
            )
        self._uploaded.add(event.trainer)

    def _on_gradients_aggregated(self, event: GradientsAggregated) -> None:
        self._aggregated.add(event.aggregator)

    def _on_update_registered(self, event: UpdateRegistered) -> None:
        if event.aggregator not in self._aggregated:
            self._ordering(
                event, event.aggregator,
                "UpdateRegistered without a prior GradientsAggregated "
                "from this aggregator",
            )

    def _on_sync_started(self, event: SyncPhaseStarted) -> None:
        self._sync_open.add(event.aggregator)

    def _on_sync_ended(self, event: SyncPhaseEnded) -> None:
        if event.aggregator not in self._sync_open:
            self._ordering(
                event, event.aggregator,
                "SyncPhaseEnded without a SyncPhaseStarted",
            )
        self._sync_open.discard(event.aggregator)

    def _on_partial_registered(self,
                               event: PartialUpdateRegistered) -> None:
        if event.aggregator not in self._sync_open:
            self._ordering(
                event, event.aggregator,
                "PartialUpdateRegistered outside a sync phase",
            )

    def _on_trainer_completed(self, event: TrainerCompleted) -> None:
        if event.trainer not in self._uploaded:
            self._ordering(
                event, event.trainer,
                "TrainerCompleted without a prior UploadCompleted",
            )

    # -- byte conservation -------------------------------------------------------

    def _on_block_fetched(self, event: BlockFetched) -> None:
        self._fetched_bytes[event.client] = (
            self._fetched_bytes.get(event.client, 0.0) + event.size
        )
        if event.cid is not None:
            # Merged downloads carry cid=None; their sources are
            # consumed via MergeServed instead.
            self._consumed.add(str(event.cid))

    def _on_bytes_received(self, event: BytesReceived) -> None:
        fetched = self._fetched_bytes.pop(event.participant, 0.0)
        if not math.isclose(event.amount, fetched,
                            rel_tol=1e-9, abs_tol=_BYTES_TOL):
            self._violate(
                event.at, "byte-conservation", event.participant,
                f"reported {event.amount:.0f} B downloaded but "
                f"{fetched:.0f} B of fetches were observed",
                iteration=event.iteration,
            )

    # -- commitment consistency --------------------------------------------------

    def _on_commitment_accumulated(self,
                                   event: CommitmentAccumulated) -> None:
        # The event's accumulated/count are the *publishing
        # accumulator's* running values — shard-local when the directory
        # is sharded — so recompute per shard...
        shard_key = (event.partition_id, event.iteration, event.shard)
        previous = self._shard_products.get(shard_key)
        if previous is None:
            product, count = event.commitment, 1
        else:
            product, count = previous[0].combine(event.commitment), \
                previous[1] + 1
        self._shard_products[shard_key] = (product, count)
        # ... while the merged product (what a sharded directory reports
        # at verification time) folds every contribution in arrival
        # order; EC-point addition commutes, so it must equal the
        # shard-order merge the directory performs.
        merged_key = (event.partition_id, event.iteration)
        merged = self._products.get(merged_key)
        if merged is None:
            self._products[merged_key] = (event.commitment, 1)
        else:
            self._products[merged_key] = (
                merged[0].combine(event.commitment), merged[1] + 1
            )
        if product != event.accumulated or count != event.count:
            where = f" (shard {event.shard})" if event.shard else ""
            self._violate(
                event.at, "commitment-consistency",
                f"partition {event.partition_id}",
                f"directory accumulator{where} diverged from the product "
                f"of contributions after {event.uploader} "
                f"(count {event.count} vs {count})",
                iteration=event.iteration,
            )

    def _on_update_verified(self, event: UpdateVerified) -> None:
        if event.expected_commitment is None:
            return
        known = self._products.get((event.partition_id, event.iteration))
        if known is None:
            self._violate(
                event.at, "commitment-consistency",
                f"partition {event.partition_id}",
                "update verified against an accumulator no "
                "CommitmentAccumulated event ever built",
                iteration=event.iteration,
            )
            return
        product, count = known
        if event.expected_commitment != product \
                or event.expected_count != count:
            self._violate(
                event.at, "commitment-consistency",
                f"partition {event.partition_id}",
                f"verification used an accumulated commitment that does "
                f"not match the product of the {count} observed "
                f"contributions",
                iteration=event.iteration,
            )

    # -- blockstore leak detection -----------------------------------------------

    def _on_block_stored(self, event: BlockStored) -> None:
        self._stored.setdefault(str(event.cid), event.node)

    def _on_merge_served(self, event: MergeServed) -> None:
        for cid in event.cids:
            self._consumed.add(str(cid))

    def _on_block_evicted(self, event: BlockEvicted) -> None:
        self._consumed.add(str(event.cid))

    def _on_snapshot_sealed(self, event: SnapshotSealed) -> None:
        self._sealed.add(str(event.cid))

    def _check_leaks(self) -> None:
        leaked = [
            cid for cid, node in sorted(self._stored.items())
            if cid not in self._consumed
            and cid not in self._sealed
        ]
        if leaked:
            sample = ", ".join(leaked[:_LEAK_SAMPLE])
            suffix = "" if len(leaked) <= _LEAK_SAMPLE else \
                f" (+{len(leaked) - _LEAK_SAMPLE} more)"
            self._violate(
                self._last_at if self._last_at > float("-inf") else 0.0,
                "blockstore-leak", "ipfs",
                f"{len(leaked)} stored object(s) never fetched, merged, "
                f"GC'd or sealed: {sample}{suffix}",
            )
