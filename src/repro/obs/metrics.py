"""Aggregated metrics over the event stream: the "shape of the run".

Counters (:mod:`repro.obs.counters`) answer *how much*; this module
answers *how distributed* and *over time*:

- :class:`Histogram` — log-spaced buckets for OpenMetrics exposition
  plus the raw observations, so p50/p95/p99 are exact (computed with
  :func:`repro.analysis.stats.percentile`, not bucket interpolation).
- :class:`TimeSeries` — a gauge sampled against the *simulated* clock,
  optionally labelled (``net.link.utilization{link="trainer-0/up"}``).
- :class:`MetricsRegistry` — an ordinary bus subscriber deriving
  latency/size histograms from events the producers already publish:
  transfer durations, DHT hops and latency, block sizes, upload /
  collect / sync / publish phase times, commitment cost.
- :class:`ResourceSampler` — a sim-clock probe recording per-link
  utilization, active flows, blockstore occupancy and directory queue
  depth into the registry's time series.

Metric names extend the :class:`~repro.obs.counters.CountersRegistry`
dotted scheme (``layer.metric``); the stable set is documented in
``docs/OBSERVABILITY.md``.  The zero-subscriber overhead contract is
unchanged: an unobserved run constructs neither a registry nor a
sampler, so it pays exactly the same one-boolean-check per emission
site as before (enforced by ``benchmarks/test_obs_overhead.py``).
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Tuple

from ..analysis.stats import percentile
from .bus import EventBus
from .counters import CountersRegistry
from .events import (
    BlockFetched,
    CommitmentComputed,
    DhtLookup,
    GradientsAggregated,
    SyncPhaseEnded,
    TransferCompleted,
    UpdateRegistered,
    UploadCompleted,
)

__all__ = ["Histogram", "TimeSeries", "MetricsRegistry", "ResourceSampler"]

#: Label key/value pairs, kept as a sorted tuple so series hash cleanly.
Labels = Tuple[Tuple[str, str], ...]


def _freeze_labels(labels: Dict[str, str]) -> Labels:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Histogram:
    """Log-spaced bucket histogram that also keeps exact observations.

    Bucket upper bounds are ``lo * growth**k`` for ``k = 0, 1, ...``
    until ``hi`` is covered; observations above the last bound land in
    the implicit ``+Inf`` bucket, observations at or below ``lo`` in the
    first.  The buckets exist for the OpenMetrics exposition (cumulative
    ``le`` semantics); quantiles are computed from the raw values, so
    they are exact rather than bucket-interpolated.
    """

    __slots__ = ("name", "unit", "bounds", "bucket_counts", "_values",
                 "total", "minimum", "maximum")

    def __init__(self, name: str, unit: str = "",
                 lo: float = 1e-3, hi: float = 1e4, growth: float = 2.0):
        if lo <= 0 or hi <= lo:
            raise ValueError("need 0 < lo < hi")
        if growth <= 1.0:
            raise ValueError("growth must be > 1")
        self.name = name
        self.unit = unit
        bounds: List[float] = [lo]
        while bounds[-1] < hi:
            bounds.append(bounds[-1] * growth)
        self.bounds = bounds
        #: Per-bucket (non-cumulative) counts; index ``len(bounds)`` is
        #: the +Inf overflow bucket.
        self.bucket_counts = [0] * (len(bounds) + 1)
        self._values: List[float] = []
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    # -- recording ---------------------------------------------------------------

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self._values.append(value)
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1

    # -- reading -----------------------------------------------------------------

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def mean(self) -> float:
        return self.total / len(self._values) if self._values else 0.0

    def percentile(self, q: float) -> float:
        """Exact q-th percentile of everything observed (0.0 if empty)."""
        if not self._values:
            return 0.0
        return percentile(self._values, q)

    def values(self) -> List[float]:
        """A copy of the raw observations, in arrival order."""
        return list(self._values)

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, OpenMetrics-style.

        The final pair's bound is ``inf`` and its count equals
        :attr:`count`.
        """
        pairs: List[Tuple[float, int]] = []
        running = 0
        for bound, bucket in zip(self.bounds, self.bucket_counts):
            running += bucket
            pairs.append((bound, running))
        pairs.append((float("inf"), running + self.bucket_counts[-1]))
        return pairs

    def summary(self) -> Dict[str, float]:
        """The digest the run manifest records."""
        if not self._values:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
        }

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count}>"


class TimeSeries:
    """A gauge sampled against the simulated clock."""

    __slots__ = ("name", "labels", "samples")

    def __init__(self, name: str, labels: Labels = ()):
        self.name = name
        self.labels = labels
        #: ``(simulated_time, value)`` pairs in record order.
        self.samples: List[Tuple[float, float]] = []

    def record(self, at: float, value: float) -> None:
        self.samples.append((float(at), float(value)))

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def last(self) -> float:
        return self.samples[-1][1] if self.samples else 0.0

    def digest(self) -> Dict[str, float]:
        """Count/min/max/mean/last digest for the run manifest."""
        if not self.samples:
            return {"count": 0}
        values = [value for _, value in self.samples]
        return {
            "count": len(values),
            "min": min(values),
            "max": max(values),
            "mean": sum(values) / len(values),
            "last": values[-1],
        }

    def key(self) -> str:
        """Stable display key: ``name{k=v,...}`` (plain name if unlabelled)."""
        if not self.labels:
            return self.name
        inner = ",".join(f"{k}={v}" for k, v in self.labels)
        return f"{self.name}{{{inner}}}"

    def __repr__(self) -> str:
        return f"<TimeSeries {self.key()} n={self.count}>"


#: Bucket layouts by quantity kind (documented in docs/OBSERVABILITY.md).
_SECONDS = dict(lo=1e-3, hi=1e4, growth=2.0)
_BYTES = dict(lo=64.0, hi=1e9, growth=4.0)
_COUNTS = dict(lo=1.0, hi=1024.0, growth=2.0)


class MetricsRegistry:
    """Latency/size histograms and resource series over bus events.

    An ordinary subscriber — attach one to any run::

        metrics = MetricsRegistry(session.sim.bus)
        session.run(rounds=3)
        print(metrics.histogram("net.transfer.duration").summary())

    Owns a :class:`CountersRegistry` on the same bus unless one is
    passed in, so a single ``close()`` detaches *everything* this
    registry attached (the counters-detach regression is pinned by
    ``tests/test_obs_exporters.py``).
    """

    #: Event type -> handler method name (class-level for coverage
    #: tooling; see ``handled_event_types``).
    _HANDLERS = {
        TransferCompleted: "_on_transfer",
        DhtLookup: "_on_dht_lookup",
        BlockFetched: "_on_block_fetched",
        UploadCompleted: "_on_upload",
        GradientsAggregated: "_on_aggregated",
        UpdateRegistered: "_on_update",
        SyncPhaseEnded: "_on_sync_ended",
        CommitmentComputed: "_on_commitment",
    }

    @classmethod
    def handled_event_types(cls):
        """The event types this registry folds into histograms."""
        return tuple(cls._HANDLERS)

    def __init__(self, bus: EventBus,
                 counters: Optional[CountersRegistry] = None):
        self._owns_counters = counters is None
        self.counters = counters if counters is not None \
            else CountersRegistry(bus)
        self._histograms: Dict[str, Histogram] = {}
        for name, unit, layout in (
            ("net.transfer.duration", "seconds", _SECONDS),
            ("net.transfer.bytes", "bytes", _BYTES),
            ("dht.lookup.hops", "hops", _COUNTS),
            ("dht.lookup.latency", "seconds", _SECONDS),
            ("ipfs.fetch.latency", "seconds", _SECONDS),
            ("ipfs.block.bytes", "bytes", _BYTES),
            ("protocol.upload.delay", "seconds", _SECONDS),
            ("protocol.collect.duration", "seconds", _SECONDS),
            ("protocol.publish.duration", "seconds", _SECONDS),
            ("protocol.sync.duration", "seconds", _SECONDS),
            ("protocol.commit.seconds", "seconds", _SECONDS),
        ):
            self._histograms[name] = Histogram(name, unit=unit, **layout)
        self._series: Dict[Tuple[str, Labels], TimeSeries] = {}
        self._dispatch = {
            event_type: getattr(self, method)
            for event_type, method in self._HANDLERS.items()
        }
        self._subscription = bus.subscribe(
            self._handle, *self._dispatch.keys()
        )

    def close(self) -> None:
        """Detach every subscription this registry created."""
        self._subscription.cancel()
        if self._owns_counters:
            self.counters.close()

    def __enter__(self) -> "MetricsRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- access ------------------------------------------------------------------

    def histogram(self, name: str) -> Histogram:
        return self._histograms[name]

    def histograms(self) -> Dict[str, Histogram]:
        return dict(self._histograms)

    def timeseries(self, name: str, **labels: str) -> TimeSeries:
        """Get or create the series ``name`` with the given labels."""
        key = (name, _freeze_labels(labels))
        series = self._series.get(key)
        if series is None:
            series = TimeSeries(name, key[1])
            self._series[key] = series
        return series

    def series(self) -> List[TimeSeries]:
        """All recorded series, sorted by display key."""
        return sorted(self._series.values(), key=TimeSeries.key)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Histogram summaries plus series digests, keyed by name."""
        merged: Dict[str, Dict[str, float]] = {
            name: histogram.summary()
            for name, histogram in sorted(self._histograms.items())
        }
        for series in self.series():
            merged[series.key()] = series.digest()
        return merged

    # -- event handlers ----------------------------------------------------------

    def _handle(self, event) -> None:
        self._dispatch[type(event)](event)

    def _on_transfer(self, event) -> None:
        self._histograms["net.transfer.duration"].observe(
            event.at - event.started_at)
        self._histograms["net.transfer.bytes"].observe(event.size)

    def _on_dht_lookup(self, event) -> None:
        self._histograms["dht.lookup.hops"].observe(event.hops)
        if event.started_at is not None:
            self._histograms["dht.lookup.latency"].observe(
                event.at - event.started_at)

    def _on_block_fetched(self, event) -> None:
        self._histograms["ipfs.block.bytes"].observe(event.size)
        if event.started_at is not None:
            self._histograms["ipfs.fetch.latency"].observe(
                event.at - event.started_at)

    def _on_upload(self, event) -> None:
        self._histograms["protocol.upload.delay"].observe(event.delay)

    def _on_aggregated(self, event) -> None:
        if event.started_at is not None:
            self._histograms["protocol.collect.duration"].observe(
                event.at - event.started_at)

    def _on_update(self, event) -> None:
        if event.started_at is not None:
            self._histograms["protocol.publish.duration"].observe(
                event.at - event.started_at)

    def _on_sync_ended(self, event) -> None:
        self._histograms["protocol.sync.duration"].observe(event.duration)

    def _on_commitment(self, event) -> None:
        self._histograms["protocol.commit.seconds"].observe(event.seconds)


class ResourceSampler:
    """Periodic sim-clock sampling of substrate state into a registry.

    Every ``interval`` simulated seconds (and once immediately on
    start) the sampler records:

    - ``net.flows.active`` — in-flight transfer count;
    - ``sched.stale_wakeups`` (series + counters gauge) — superseded
      flow-scheduler wakeups that fired anyway; stays 0 while kernel
      timeout cancellation holds, so any nonzero value flags heap
      pollution;
    - ``net.link.utilization{link=...}`` — allocated rate over capacity
      for every link currently crossed by a flow (idle links are not
      sampled, so the series measures utilization *while active*);
    - ``ipfs.blockstore.bytes`` / ``ipfs.blockstore.objects`` — resident
      storage across the given nodes, plus per-node
      ``ipfs.blockstore.node.bytes{node=...}``;
    - ``directory.queue.depth`` — requests waiting in the directory's
      inbox.

    The sampler is pull-based and opt-in: an unobserved run never
    constructs one, so the zero-subscriber overhead contract holds — the
    same reasoning as the ``bus.wants()`` guards at emission sites, with
    construction standing in for subscription.  Wakeups are
    epoch-validated (the :class:`~repro.net.bandwidth.FlowScheduler`
    pattern), so :meth:`stop` leaves at most one stale no-op timeout on
    the queue; stop the sampler before draining the simulator with
    ``sim.run()`` or the rescheduling tick keeps the queue alive
    forever.  ``session.run(...)`` / ``run_iteration()`` use
    ``run_until`` and are safe with a live sampler.
    """

    def __init__(self, sim, registry: MetricsRegistry,
                 interval: float = 1.0, network=None,
                 nodes: Iterable = (), directory=None,
                 autostart: bool = True):
        if interval <= 0:
            raise ValueError("sample interval must be positive")
        self.sim = sim
        self.registry = registry
        self.interval = float(interval)
        self.network = network
        self.nodes = list(nodes)
        self.directory = directory
        self.samples_taken = 0
        self.active = False
        self._epoch = 0
        #: (name, label value) -> TimeSeries, so the per-tick hot path
        #: skips the registry's label-freezing lookup.  Safe to hold:
        #: the registry never drops a created series.
        self._series_cache: Dict[Tuple[str, Optional[str]], TimeSeries] = {}
        if autostart:
            self.start()

    def _series(self, name: str, label_value: Optional[str] = None,
                **labels: str) -> TimeSeries:
        key = (name, label_value)
        series = self._series_cache.get(key)
        if series is None:
            series = self.registry.timeseries(name, **labels)
            self._series_cache[key] = series
        return series

    @classmethod
    def for_session(cls, session, registry: MetricsRegistry,
                    interval: float = 1.0,
                    autostart: bool = True) -> "ResourceSampler":
        """Wire a sampler to everything an :class:`FLSession` owns."""
        return cls(
            session.sim, registry, interval=interval,
            network=session.testbed.network, nodes=session.nodes,
            directory=session.directory, autostart=autostart,
        )

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Sample immediately, then every :attr:`interval` sim-seconds."""
        if self.active:
            return
        self.active = True
        self.sample()
        self._schedule()

    def stop(self) -> None:
        """Stop sampling; safe to call more than once."""
        self.active = False
        self._epoch += 1

    # Alias so samplers read like the other obs resources.
    close = stop

    def __enter__(self) -> "ResourceSampler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- sampling ----------------------------------------------------------------

    def sample(self) -> None:
        """Take one sample at the current simulated instant."""
        now = self.sim.now
        registry = self.registry
        self.samples_taken += 1
        if self.network is not None:
            self._series("net.flows.active").record(
                now, self.network.active_transfers)
            self._series("sched.stale_wakeups").record(
                now, self.network.stale_wakeups)
            registry.counters.set_gauge(
                "sched.stale_wakeups", self.network.stale_wakeups)
            for link_name, utilization in \
                    self.network.link_utilization().items():
                self._series(
                    "net.link.utilization", link_name, link=link_name
                ).record(now, utilization)
        if self.nodes:
            total_bytes = 0.0
            total_objects = 0
            for node in self.nodes:
                store = node.store
                total_bytes += store.total_bytes
                total_objects += len(store)
                self._series(
                    "ipfs.blockstore.node.bytes", node.name,
                    node=node.name
                ).record(now, store.total_bytes)
            self._series("ipfs.blockstore.bytes").record(
                now, total_bytes)
            self._series("ipfs.blockstore.objects").record(
                now, total_objects)
        if self.directory is not None:
            self._series("directory.queue.depth").record(
                now, len(self.directory.endpoint.inbox.items))

    # -- internals ---------------------------------------------------------------

    def _schedule(self) -> None:
        epoch = self._epoch
        wakeup = self.sim.timeout(self.interval)
        wakeup._add_callback(lambda _event: self._tick(epoch))

    def _tick(self, epoch: int) -> None:
        if not self.active or epoch != self._epoch:
            return  # stopped (or restarted) since this wakeup was set
        self.sample()
        self._schedule()
