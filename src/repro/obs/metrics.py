"""Aggregated metrics over the event stream: the "shape of the run".

Counters (:mod:`repro.obs.counters`) answer *how much*; this module
answers *how distributed* and *over time*:

- :class:`Histogram` — log-spaced buckets for OpenMetrics exposition
  backed by a :class:`~repro.obs.sketch.QuantileSketch`: below the
  exactness threshold p50/p95/p99 are float-equal to
  :func:`repro.analysis.stats.percentile`; above it the sketch bounds
  memory at O(distinct buckets) with a guaranteed relative error, and
  histograms :meth:`~Histogram.merge` across cohorts/shards.
- :class:`TimeSeries` — a gauge sampled against the *simulated* clock,
  optionally labelled (``net.link.utilization{link="trainer-0/up"}``),
  with ring-buffer retention: when the buffer fills, every other
  retained sample is dropped and the keep-stride doubles, so retention
  is bounded and *deterministic* (a replay decimates identically).
  Digests come from running accumulators over **all** records, so they
  are unaffected by decimation.
- :class:`MetricsRegistry` — an ordinary bus subscriber deriving
  latency/size histograms from events the producers already publish,
  and accounting its own cost (``events_observed``,
  :meth:`~MetricsRegistry.telemetry_bytes`, ``peak_telemetry_bytes``)
  so run manifests can gate observability regressions.
- :class:`ResourceSampler` — a sim-clock probe recording per-link
  utilization, active flows, blockstore occupancy and directory queue
  depth into the registry's time series.

Metric names extend the :class:`~repro.obs.counters.CountersRegistry`
dotted scheme (``layer.metric``); the stable set is documented in
``docs/OBSERVABILITY.md``.  The zero-subscriber overhead contract is
unchanged: an unobserved run constructs neither a registry nor a
sampler, so it pays exactly the same one-boolean-check per emission
site as before (enforced by ``benchmarks/test_obs_overhead.py``).
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .bus import EventBus
from .counters import CountersRegistry
from .events import (
    BlockFetched,
    CommitmentComputed,
    DhtLookup,
    GradientsAggregated,
    SyncPhaseEnded,
    TransferCompleted,
    UpdateRegistered,
    UploadCompleted,
)
from .sketch import (
    DEFAULT_EXACT_THRESHOLD,
    DEFAULT_RELATIVE_ERROR,
    QuantileSketch,
)

__all__ = [
    "Histogram",
    "TimeSeries",
    "MetricsRegistry",
    "ResourceSampler",
    "DEFAULT_SERIES_RETENTION",
]

#: Label key/value pairs, kept as a sorted tuple so series hash cleanly.
Labels = Tuple[Tuple[str, str], ...]

#: Retained samples per series before decimation halves them.  Must be
#: even so the doubled keep-stride stays aligned with the record grid.
DEFAULT_SERIES_RETENTION = 4096

#: Memory-model constants (platform-stable, not ``sys.getsizeof``):
#: a retained ``(at, value)`` sample and a fixed per-object overhead.
_BYTES_PER_SAMPLE = 64
_SERIES_OVERHEAD = 256
_HISTOGRAM_OVERHEAD = 256

#: Sampler ticks between peak-memory refreshes (plus one on stop).
_FOOTPRINT_REFRESH_TICKS = 32


def _freeze_labels(labels: Dict[str, str]) -> Labels:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Histogram:
    """Log-spaced bucket histogram backed by a quantile sketch.

    Bucket upper bounds are ``lo * growth**k`` for ``k = 0, 1, ...``
    until ``hi`` is covered; observations above the last bound land in
    the implicit ``+Inf`` bucket, observations at or below ``lo`` in the
    first.  The buckets exist for the OpenMetrics exposition (cumulative
    ``le`` semantics); quantiles come from the sketch — exact (raw
    values retained, float-equal to
    :func:`repro.analysis.stats.percentile`) up to ``max_exact``
    observations, bounded-relative-error estimates beyond.
    """

    __slots__ = ("name", "unit", "bounds", "bucket_counts",
                 "_sketch", "_summary")

    def __init__(self, name: str, unit: str = "",
                 lo: float = 1e-3, hi: float = 1e4, growth: float = 2.0,
                 max_exact: int = DEFAULT_EXACT_THRESHOLD,
                 relative_error: float = DEFAULT_RELATIVE_ERROR):
        if lo <= 0 or hi <= lo:
            raise ValueError("need 0 < lo < hi")
        if growth <= 1.0:
            raise ValueError("growth must be > 1")
        self.name = name
        self.unit = unit
        bounds: List[float] = [lo]
        while bounds[-1] < hi:
            bounds.append(bounds[-1] * growth)
        self.bounds = bounds
        #: Per-bucket (non-cumulative) counts; index ``len(bounds)`` is
        #: the +Inf overflow bucket.
        self.bucket_counts = [0] * (len(bounds) + 1)
        self._sketch = QuantileSketch(
            max_exact=max_exact, relative_error=relative_error)
        self._summary: Optional[Dict[str, float]] = None

    # -- recording ---------------------------------------------------------------

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self._summary = None
        self._sketch.add(value)
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold another histogram (same bucket layout) into this one.

        Enables cross-cohort/shard aggregation without raw-value
        exchange; bucket counts and sketch state merge
        order-independently.  Returns ``self``.
        """
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge {other.name!r} into {self.name!r}: "
                "bucket layouts differ")
        self._summary = None
        for index, bucket_count in enumerate(other.bucket_counts):
            self.bucket_counts[index] += bucket_count
        self._sketch.merge(other._sketch)
        return self

    # -- reading -----------------------------------------------------------------

    @property
    def sketch(self) -> QuantileSketch:
        """The backing quantile sketch (read-only use)."""
        return self._sketch

    @property
    def exact(self) -> bool:
        """True while quantiles are computed from retained raw values."""
        return self._sketch.exact

    @property
    def count(self) -> int:
        return self._sketch.count

    @property
    def total(self) -> float:
        return self._sketch.total

    @property
    def minimum(self) -> float:
        return self._sketch.minimum

    @property
    def maximum(self) -> float:
        return self._sketch.maximum

    @property
    def mean(self) -> float:
        return self._sketch.mean

    def percentile(self, q: float) -> float:
        """The q-th percentile (0.0 if empty): exact below the
        threshold, within the sketch's relative error above it."""
        if self._sketch.count == 0:
            return 0.0
        return self._sketch.percentile(q)

    def values(self) -> List[float]:
        """A copy of the raw observations, in arrival order.

        Raises :class:`ValueError` once the histogram has spilled to
        sketch mode (prefer :meth:`iter_values` or :meth:`summary`).
        """
        return self._sketch.values()

    def iter_values(self) -> Iterator[float]:
        """Iterate raw observations without copying (exact mode only)."""
        return self._sketch.iter_values()

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, OpenMetrics-style.

        The final pair's bound is ``inf`` and its count equals
        :attr:`count`.
        """
        pairs: List[Tuple[float, int]] = []
        running = 0
        for bound, bucket in zip(self.bounds, self.bucket_counts):
            running += bucket
            pairs.append((bound, running))
        pairs.append((float("inf"), running + self.bucket_counts[-1]))
        return pairs

    def summary(self) -> Dict[str, float]:
        """The digest the run manifest records (cached between
        observations, so exposition passes don't recompute quantiles)."""
        if self._summary is None:
            if self.count == 0:
                self._summary = {"count": 0}
            else:
                self._summary = {
                    "count": self.count,
                    "sum": self.total,
                    "min": self.minimum,
                    "max": self.maximum,
                    "mean": self.mean,
                    "p50": self.percentile(50.0),
                    "p95": self.percentile(95.0),
                    "p99": self.percentile(99.0),
                }
        return dict(self._summary)

    def footprint_bytes(self) -> int:
        """Deterministic memory model: sketch state plus bucket array."""
        return (_HISTOGRAM_OVERHEAD + len(self.bucket_counts) * 8
                + self._sketch.footprint_bytes())

    def __repr__(self) -> str:
        mode = "exact" if self.exact else "sketch"
        return f"<Histogram {self.name} n={self.count} {mode}>"


class TimeSeries:
    """A gauge sampled against the simulated clock, with bounded
    retention.

    When ``max_samples`` is set (the registry default) and the buffer
    fills, every other retained sample is dropped and the keep-stride
    doubles — a deterministic function of the record count alone, so a
    seeded replay retains byte-identical samples.  :meth:`digest` is
    computed from running accumulators over *all* records and is
    therefore identical whether or not decimation occurred.
    """

    __slots__ = ("name", "labels", "samples", "max_samples",
                 "_stride", "_next_keep",
                 "_count", "_total", "_min", "_max", "_last")

    def __init__(self, name: str, labels: Labels = (),
                 max_samples: int = 0):
        if max_samples and (max_samples < 2 or max_samples % 2):
            raise ValueError("max_samples must be 0 or an even int >= 2")
        self.name = name
        self.labels = labels
        #: Retained ``(simulated_time, value)`` pairs in record order;
        #: a decimated subset of all records once the buffer has filled.
        self.samples: List[Tuple[float, float]] = []
        self.max_samples = int(max_samples)
        self._stride = 1
        self._next_keep = 0
        self._count = 0
        self._total = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._last = 0.0

    def record(self, at: float, value: float) -> None:
        value = float(value)
        index = self._count
        self._count += 1
        self._total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        self._last = value
        if index != self._next_keep:
            return  # decimated: off the keep-stride grid
        if self.max_samples and len(self.samples) == self.max_samples:
            # Halve retention, double the stride.  The incoming record
            # index is max_samples * stride, which (max_samples even)
            # sits on the doubled grid, as do the survivors.
            del self.samples[1::2]
            self._stride *= 2
        self.samples.append((float(at), value))
        self._next_keep = index + self._stride

    # -- reading -----------------------------------------------------------------

    @property
    def count(self) -> int:
        """Total records seen (retained or not)."""
        return self._count

    @property
    def retained(self) -> int:
        """Samples currently held in the ring."""
        return len(self.samples)

    @property
    def stride(self) -> int:
        """Current keep-stride (1 until the first decimation)."""
        return self._stride

    @property
    def last(self) -> float:
        return self._last

    def digest(self) -> Dict[str, float]:
        """Count/min/max/mean/last digest over *all* records."""
        if not self._count:
            return {"count": 0}
        return {
            "count": self._count,
            "min": self._min,
            "max": self._max,
            "mean": self._total / self._count,
            "last": self._last,
        }

    def footprint_bytes(self) -> int:
        """Deterministic memory model of the retained samples."""
        return _SERIES_OVERHEAD + len(self.samples) * _BYTES_PER_SAMPLE

    def key(self) -> str:
        """Stable display key: ``name{k=v,...}`` (plain name if unlabelled)."""
        if not self.labels:
            return self.name
        inner = ",".join(f"{k}={v}" for k, v in self.labels)
        return f"{self.name}{{{inner}}}"

    def __repr__(self) -> str:
        return f"<TimeSeries {self.key()} n={self.count}>"


#: Bucket layouts by quantity kind (documented in docs/OBSERVABILITY.md).
_SECONDS = dict(lo=1e-3, hi=1e4, growth=2.0)
_BYTES = dict(lo=64.0, hi=1e9, growth=4.0)
_COUNTS = dict(lo=1.0, hi=1024.0, growth=2.0)


class MetricsRegistry:
    """Latency/size histograms and resource series over bus events.

    An ordinary subscriber — attach one to any run::

        metrics = MetricsRegistry(session.sim.bus)
        session.run(rounds=3)
        print(metrics.histogram("net.transfer.duration").summary())

    Owns a :class:`CountersRegistry` on the same bus unless one is
    passed in, so a single ``close()`` detaches *everything* this
    registry attached (the counters-detach regression is pinned by
    ``tests/test_obs_exporters.py``).

    Memory is bounded by construction: histograms spill to sketches
    past ``histogram_max_exact`` observations and series decimate past
    ``series_retention`` samples, so attaching a registry to a
    10^4-population cohort run costs O(metrics), not O(events).  The
    registry also meters itself — :attr:`events_observed`,
    :meth:`telemetry_bytes` and :attr:`peak_telemetry_bytes` feed the
    run manifest's obs-cost gauges.
    """

    #: Event type -> handler method name (class-level for coverage
    #: tooling; see ``handled_event_types``).
    _HANDLERS = {
        TransferCompleted: "_on_transfer",
        DhtLookup: "_on_dht_lookup",
        BlockFetched: "_on_block_fetched",
        UploadCompleted: "_on_upload",
        GradientsAggregated: "_on_aggregated",
        UpdateRegistered: "_on_update",
        SyncPhaseEnded: "_on_sync_ended",
        CommitmentComputed: "_on_commitment",
    }

    @classmethod
    def handled_event_types(cls):
        """The event types this registry folds into histograms."""
        return tuple(cls._HANDLERS)

    def __init__(self, bus: EventBus,
                 counters: Optional[CountersRegistry] = None,
                 histogram_max_exact: int = DEFAULT_EXACT_THRESHOLD,
                 relative_error: float = DEFAULT_RELATIVE_ERROR,
                 series_retention: int = DEFAULT_SERIES_RETENTION):
        self._owns_counters = counters is None
        self.counters = counters if counters is not None \
            else CountersRegistry(bus)
        self.series_retention = int(series_retention)
        self.events_observed = 0
        self.peak_telemetry_bytes = 0
        self._histograms: Dict[str, Histogram] = {}
        for name, unit, layout in (
            ("net.transfer.duration", "seconds", _SECONDS),
            ("net.transfer.bytes", "bytes", _BYTES),
            ("dht.lookup.hops", "hops", _COUNTS),
            ("dht.lookup.latency", "seconds", _SECONDS),
            ("ipfs.fetch.latency", "seconds", _SECONDS),
            ("ipfs.block.bytes", "bytes", _BYTES),
            ("protocol.upload.delay", "seconds", _SECONDS),
            ("protocol.collect.duration", "seconds", _SECONDS),
            ("protocol.publish.duration", "seconds", _SECONDS),
            ("protocol.sync.duration", "seconds", _SECONDS),
            ("protocol.commit.seconds", "seconds", _SECONDS),
        ):
            self._histograms[name] = Histogram(
                name, unit=unit,
                max_exact=histogram_max_exact,
                relative_error=relative_error,
                **layout)
        self._series: Dict[Tuple[str, Labels], TimeSeries] = {}
        self._dispatch = {
            event_type: getattr(self, method)
            for event_type, method in self._HANDLERS.items()
        }
        self._subscription = bus.subscribe(
            self._handle, *self._dispatch.keys()
        )

    def close(self) -> None:
        """Detach every subscription this registry created."""
        self._subscription.cancel()
        if self._owns_counters:
            self.counters.close()
        self.telemetry_bytes()  # final peak refresh

    def __enter__(self) -> "MetricsRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- access ------------------------------------------------------------------

    def histogram(self, name: str) -> Histogram:
        return self._histograms[name]

    def histograms(self) -> Dict[str, Histogram]:
        return dict(self._histograms)

    def timeseries(self, name: str, **labels: str) -> TimeSeries:
        """Get or create the series ``name`` with the given labels."""
        key = (name, _freeze_labels(labels))
        series = self._series.get(key)
        if series is None:
            series = TimeSeries(
                name, key[1], max_samples=self.series_retention)
            self._series[key] = series
        return series

    def series(self) -> List[TimeSeries]:
        """All recorded series, sorted by display key."""
        return sorted(self._series.values(), key=TimeSeries.key)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Histogram summaries plus series digests, keyed by name."""
        merged: Dict[str, Dict[str, float]] = {
            name: histogram.summary()
            for name, histogram in sorted(self._histograms.items())
        }
        for series in self.series():
            merged[series.key()] = series.digest()
        return merged

    # -- self-accounting ---------------------------------------------------------

    def telemetry_bytes(self) -> int:
        """Modelled resident telemetry memory; refreshes the peak.

        A deterministic arithmetic model (sketch buckets, retained
        samples — see :mod:`repro.obs.sketch`), so the manifests and CI
        budgets built on it are platform-stable.
        """
        resident = 0
        for histogram in self._histograms.values():
            resident += histogram.footprint_bytes()
        for series in self._series.values():
            resident += series.footprint_bytes()
        if resident > self.peak_telemetry_bytes:
            self.peak_telemetry_bytes = resident
        return resident

    def sketch_histograms(self) -> int:
        """How many histograms have spilled past exact mode."""
        return sum(1 for histogram in self._histograms.values()
                   if not histogram.exact)

    # -- event handlers ----------------------------------------------------------

    def _handle(self, event) -> None:
        self.events_observed += 1
        self._dispatch[type(event)](event)

    def _on_transfer(self, event) -> None:
        self._histograms["net.transfer.duration"].observe(
            event.at - event.started_at)
        self._histograms["net.transfer.bytes"].observe(event.size)

    def _on_dht_lookup(self, event) -> None:
        self._histograms["dht.lookup.hops"].observe(event.hops)
        if event.started_at is not None:
            self._histograms["dht.lookup.latency"].observe(
                event.at - event.started_at)

    def _on_block_fetched(self, event) -> None:
        self._histograms["ipfs.block.bytes"].observe(event.size)
        if event.started_at is not None:
            self._histograms["ipfs.fetch.latency"].observe(
                event.at - event.started_at)

    def _on_upload(self, event) -> None:
        self._histograms["protocol.upload.delay"].observe(event.delay)

    def _on_aggregated(self, event) -> None:
        if event.started_at is not None:
            self._histograms["protocol.collect.duration"].observe(
                event.at - event.started_at)

    def _on_update(self, event) -> None:
        if event.started_at is not None:
            self._histograms["protocol.publish.duration"].observe(
                event.at - event.started_at)

    def _on_sync_ended(self, event) -> None:
        self._histograms["protocol.sync.duration"].observe(event.duration)

    def _on_commitment(self, event) -> None:
        self._histograms["protocol.commit.seconds"].observe(event.seconds)


class ResourceSampler:
    """Periodic sim-clock sampling of substrate state into a registry.

    Every ``interval`` simulated seconds (and once immediately on
    start) the sampler records:

    - ``net.flows.active`` — in-flight transfer count;
    - ``sched.stale_wakeups`` (series + counters gauge) — superseded
      flow-scheduler wakeups that fired anyway; stays 0 while kernel
      timeout cancellation holds, so any nonzero value flags heap
      pollution;
    - ``net.link.utilization{link=...}`` — allocated rate over capacity
      for every link currently crossed by a flow (idle links are not
      sampled, so the series measures utilization *while active*);
    - ``ipfs.blockstore.bytes`` / ``ipfs.blockstore.objects`` — resident
      storage across the given nodes, plus per-node
      ``ipfs.blockstore.node.bytes{node=...}``;
    - ``directory.queue.depth`` — requests waiting in the directory's
      inbox.

    Each tick ends by refreshing the registry's telemetry-memory peak,
    so ``peak_telemetry_bytes`` tracks the high-water mark even when
    series later decimate.

    The sampler is pull-based and opt-in: an unobserved run never
    constructs one, so the zero-subscriber overhead contract holds — the
    same reasoning as the ``bus.wants()`` guards at emission sites, with
    construction standing in for subscription.  Wakeups are
    epoch-validated (the :class:`~repro.net.bandwidth.FlowScheduler`
    pattern), so :meth:`stop` leaves at most one stale no-op timeout on
    the queue; stop the sampler before draining the simulator with
    ``sim.run()`` or the rescheduling tick keeps the queue alive
    forever.  ``session.run(...)`` / ``run_iteration()`` use
    ``run_until`` and are safe with a live sampler.
    """

    def __init__(self, sim, registry: MetricsRegistry,
                 interval: float = 1.0, network=None,
                 nodes: Iterable = (), directory=None,
                 autostart: bool = True):
        if interval <= 0:
            raise ValueError("sample interval must be positive")
        self.sim = sim
        self.registry = registry
        self.interval = float(interval)
        self.network = network
        self.nodes = list(nodes)
        self.directory = directory
        self.samples_taken = 0
        self.active = False
        self._epoch = 0
        #: (name, label value) -> TimeSeries, so the per-tick hot path
        #: skips the registry's label-freezing lookup.  Safe to hold:
        #: the registry never drops a created series.
        self._series_cache: Dict[Tuple[str, Optional[str]], TimeSeries] = {}
        if autostart:
            self.start()

    def _series(self, name: str, label_value: Optional[str] = None,
                **labels: str) -> TimeSeries:
        key = (name, label_value)
        series = self._series_cache.get(key)
        if series is None:
            series = self.registry.timeseries(name, **labels)
            self._series_cache[key] = series
        return series

    @classmethod
    def for_session(cls, session, registry: MetricsRegistry,
                    interval: float = 1.0,
                    autostart: bool = True) -> "ResourceSampler":
        """Wire a sampler to everything an :class:`FLSession` owns."""
        return cls(
            session.sim, registry, interval=interval,
            network=session.testbed.network, nodes=session.nodes,
            directory=session.directory, autostart=autostart,
        )

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Sample immediately, then every :attr:`interval` sim-seconds."""
        if self.active:
            return
        self.active = True
        self.sample()
        self._schedule()

    def stop(self) -> None:
        """Stop sampling; safe to call more than once."""
        self.active = False
        self._epoch += 1
        self.registry.telemetry_bytes()  # final peak refresh

    # Alias so samplers read like the other obs resources.
    close = stop

    def __enter__(self) -> "ResourceSampler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- sampling ----------------------------------------------------------------

    def sample(self) -> None:
        """Take one sample at the current simulated instant."""
        now = self.sim.now
        registry = self.registry
        self.samples_taken += 1
        if self.network is not None:
            self._series("net.flows.active").record(
                now, self.network.active_transfers)
            self._series("sched.stale_wakeups").record(
                now, self.network.stale_wakeups)
            registry.counters.set_gauge(
                "sched.stale_wakeups", self.network.stale_wakeups)
            for link_name, utilization in \
                    self.network.link_utilization().items():
                self._series(
                    "net.link.utilization", link_name, link=link_name
                ).record(now, utilization)
        if self.nodes:
            total_bytes = 0.0
            total_objects = 0
            for node in self.nodes:
                store = node.store
                total_bytes += store.total_bytes
                total_objects += len(store)
                self._series(
                    "ipfs.blockstore.node.bytes", node.name,
                    node=node.name
                ).record(now, store.total_bytes)
            self._series("ipfs.blockstore.bytes").record(
                now, total_bytes)
            self._series("ipfs.blockstore.objects").record(
                now, total_objects)
        if self.directory is not None:
            # inbox_depth() spans all shards when the directory is
            # sharded; on the single server it is the inbox length.
            self._series("directory.queue.depth").record(
                now, self.directory.inbox_depth())
        # Refresh the registry's peak-memory account periodically rather
        # than every tick: the footprint walk is O(series + histograms)
        # and at cohort scale it dominated the sampler.  The cadence is
        # a pure function of samples_taken, so the recorded peak is as
        # deterministic as the per-tick refresh was; registry.close()
        # (and stop()) take the final reading.
        if self.samples_taken % _FOOTPRINT_REFRESH_TICKS == 0:
            registry.telemetry_bytes()

    # -- internals ---------------------------------------------------------------

    def _schedule(self) -> None:
        epoch = self._epoch
        wakeup = self.sim.timeout(self.interval)
        wakeup._add_callback(lambda _event: self._tick(epoch))

    def _tick(self, epoch: int) -> None:
        if not self.active or epoch != self._epoch:
            return  # stopped (or restarted) since this wakeup was set
        self.sample()
        self._schedule()
