"""Observability: the typed event bus every layer reports into.

This package is the repo's instrumentation spine.  Producers — the
network emulator, the simulated IPFS, the directory service, trainers
and aggregators — publish small typed events
(:mod:`repro.obs.events`) to a per-simulation :class:`EventBus`
(``sim.bus``); consumers subscribe:

- :class:`TelemetryCollector` — rebuilds the paper's per-iteration
  metrics (:class:`~repro.core.telemetry.IterationMetrics`) from the
  event stream; every session owns one.
- :class:`CountersRegistry` — named counters/gauges (directory load,
  DHT hops, bytes by layer).
- :class:`JsonlTraceExporter` — streams every event to a JSON-lines
  timeline file (``python -m repro.cli trace``).
- :class:`SpanCollector` — reconstructs per-iteration causal span trees
  (:mod:`repro.obs.spans`); :class:`CriticalPathAnalyzer` decomposes the
  aggregation delay along the slowest chain and ranks stragglers;
  :class:`PerfettoExporter` renders the trees as a Perfetto timeline
  (``python -m repro.cli timeline`` / ``critical-path``).
- :class:`~repro.net.trace.TransferTrace` — flow records, now a thin
  subscriber over ``TransferStarted``/``TransferCompleted``.
- :class:`InvariantMonitors` — online protocol invariants (byte
  conservation, commitment-accumulator consistency, protocol ordering,
  blockstore leaks); violations re-enter the bus as
  :class:`InvariantViolated` events (``python -m repro.cli audit``).
- :class:`FlightRecorder` — bounded ring-buffer forensics; seals an
  :class:`IncidentBundle` (event window, span chain, blame report,
  Perfetto slice) on ``VerificationFailed``/``InvariantViolated``
  (``python -m repro.cli incidents``).

The bus is zero-overhead when unsubscribed: emission sites guard event
construction behind :meth:`EventBus.wants`, so unobserved runs pay one
boolean check per site.  At cohort scale the stack stays bounded:
histograms spill to a mergeable :class:`QuantileSketch`
(:mod:`repro.obs.sketch`), series decimate deterministically, a
:class:`SamplingPolicy` thins the firehose families at the producer,
and a :class:`ProgressReporter` (:mod:`repro.obs.progress`) heartbeats
liveness and telemetry cost.  A :class:`HostProfiler`
(:mod:`repro.obs.profiling`) attributes *wall-clock* (host) cost to
subsystem scopes — kernel dispatch, bandwidth recompute, crypto,
directory, ML, per-subscriber telemetry — without touching the
simulated clock or any RNG (``python -m repro.cli profile``).  An
:class:`AnomalyWatchdog` (:mod:`repro.obs.anomaly`) hosts online
detectors — retry storms, throughput collapse, queue runaway,
simulation stall, convergence stall/divergence — that publish typed
:class:`AnomalyDetected` events back onto the bus, auto-sealing
incident bundles and feeding ``obs.anomaly.*`` manifest gauges
(``python -m repro.cli chaos --watch``).  See
``docs/OBSERVABILITY.md``.
"""

from .anomaly import (
    ANOMALY_KINDS,
    AnomalyWatchdog,
    ConvergenceDetector,
    Detector,
    QueueRunawayDetector,
    RetryStormDetector,
    SimStallDetector,
    ThroughputCollapseDetector,
)
from .bus import (
    EventBus,
    SAMPLED_EVENT_FAMILIES,
    SamplingPolicy,
    Subscription,
    sample_key,
)
from .counters import CountersRegistry
from .critical_path import (
    CriticalPath,
    CriticalPathAnalyzer,
    CriticalStep,
    StragglerEntry,
    StragglerReport,
)
from .events import (
    AnomalyDetected,
    BlockEvicted,
    BlockFetched,
    BlockStored,
    BytesReceived,
    CohortLoadApplied,
    CommitmentAccumulated,
    CommitmentComputed,
    DhtLookup,
    DirectoryRequest,
    Event,
    FaultHealed,
    FaultInjected,
    GradientRegistered,
    GradientsAggregated,
    InvariantViolated,
    IterationFinished,
    IterationStarted,
    MergeServed,
    NodeCrashed,
    NodeRestarted,
    PROTOCOL_EVENTS,
    PartialUpdateRegistered,
    ParticipantDegraded,
    RetryExhausted,
    SnapshotSealed,
    SyncPhaseEnded,
    SyncPhaseStarted,
    TakeoverPerformed,
    TrainerCompleted,
    TrainingEvaluated,
    TransferAborted,
    TransferCompleted,
    TransferStarted,
    UpdateRegistered,
    UpdateVerified,
    UploadCompleted,
    VerificationFailed,
)
from .forensics import BlameReport, FlightRecorder, IncidentBundle
from .jsonl import JsonlTraceExporter
from .manifest import (
    DiffEntry,
    ManifestDiff,
    RunManifest,
    compare_manifests,
    config_fingerprint,
)
from .metrics import Histogram, MetricsRegistry, ResourceSampler, TimeSeries
from .monitors import InvariantMonitors
from .openmetrics import (
    parse_openmetrics,
    render_histogram,
    render_openmetrics,
)
from .perfetto import PerfettoExporter
from .profiling import (
    FakeWallClock,
    HostProfile,
    HostProfiler,
    SYSTEM_WALL_CLOCK,
    ScopeStat,
    WallClock,
)
from .progress import ProgressReporter, format_heartbeat, read_progress
from .sketch import QuantileSketch
from .spans import SPAN_EVENTS, Span, SpanCollector, SpanTree, \
    build_span_tree
from .telemetry import TelemetryCollector

__all__ = [
    "ANOMALY_KINDS",
    "AnomalyDetected",
    "AnomalyWatchdog",
    "BlameReport",
    "BlockEvicted",
    "BlockFetched",
    "BlockStored",
    "BytesReceived",
    "CohortLoadApplied",
    "CommitmentAccumulated",
    "CommitmentComputed",
    "ConvergenceDetector",
    "CountersRegistry",
    "CriticalPath",
    "CriticalPathAnalyzer",
    "CriticalStep",
    "Detector",
    "DhtLookup",
    "DiffEntry",
    "DirectoryRequest",
    "Event",
    "EventBus",
    "FakeWallClock",
    "FaultHealed",
    "FaultInjected",
    "FlightRecorder",
    "Histogram",
    "HostProfile",
    "HostProfiler",
    "GradientRegistered",
    "GradientsAggregated",
    "IncidentBundle",
    "InvariantMonitors",
    "InvariantViolated",
    "IterationFinished",
    "IterationStarted",
    "JsonlTraceExporter",
    "ManifestDiff",
    "MergeServed",
    "MetricsRegistry",
    "NodeCrashed",
    "NodeRestarted",
    "PROTOCOL_EVENTS",
    "PartialUpdateRegistered",
    "ParticipantDegraded",
    "PerfettoExporter",
    "ProgressReporter",
    "QuantileSketch",
    "QueueRunawayDetector",
    "ResourceSampler",
    "RetryExhausted",
    "RetryStormDetector",
    "RunManifest",
    "SAMPLED_EVENT_FAMILIES",
    "SPAN_EVENTS",
    "SYSTEM_WALL_CLOCK",
    "SamplingPolicy",
    "ScopeStat",
    "SimStallDetector",
    "SnapshotSealed",
    "Span",
    "SpanCollector",
    "SpanTree",
    "StragglerEntry",
    "StragglerReport",
    "Subscription",
    "SyncPhaseEnded",
    "SyncPhaseStarted",
    "TakeoverPerformed",
    "TelemetryCollector",
    "ThroughputCollapseDetector",
    "TimeSeries",
    "TrainerCompleted",
    "TrainingEvaluated",
    "TransferAborted",
    "TransferCompleted",
    "TransferStarted",
    "UpdateRegistered",
    "UpdateVerified",
    "UploadCompleted",
    "VerificationFailed",
    "WallClock",
    "build_span_tree",
    "compare_manifests",
    "config_fingerprint",
    "format_heartbeat",
    "parse_openmetrics",
    "read_progress",
    "render_histogram",
    "render_openmetrics",
    "sample_key",
]
