"""Observability: the typed event bus every layer reports into.

This package is the repo's instrumentation spine.  Producers — the
network emulator, the simulated IPFS, the directory service, trainers
and aggregators — publish small typed events
(:mod:`repro.obs.events`) to a per-simulation :class:`EventBus`
(``sim.bus``); consumers subscribe:

- :class:`TelemetryCollector` — rebuilds the paper's per-iteration
  metrics (:class:`~repro.core.telemetry.IterationMetrics`) from the
  event stream; every session owns one.
- :class:`CountersRegistry` — named counters/gauges (directory load,
  DHT hops, bytes by layer).
- :class:`JsonlTraceExporter` — streams every event to a JSON-lines
  timeline file (``python -m repro.cli trace``).
- :class:`~repro.net.trace.TransferTrace` — flow records, now a thin
  subscriber over ``TransferStarted``/``TransferCompleted``.

The bus is zero-overhead when unsubscribed: emission sites guard event
construction behind :meth:`EventBus.wants`, so unobserved runs pay one
boolean check per site.  See ``docs/OBSERVABILITY.md``.
"""

from .bus import EventBus, Subscription
from .counters import CountersRegistry
from .events import (
    BlockFetched,
    BlockStored,
    BytesReceived,
    CommitmentComputed,
    DhtLookup,
    DirectoryRequest,
    Event,
    GradientRegistered,
    GradientsAggregated,
    IterationFinished,
    IterationStarted,
    PROTOCOL_EVENTS,
    PartialUpdateRegistered,
    SyncPhaseEnded,
    SyncPhaseStarted,
    TakeoverPerformed,
    TrainerCompleted,
    TransferCompleted,
    TransferStarted,
    UpdateRegistered,
    UploadCompleted,
    VerificationFailed,
)
from .jsonl import JsonlTraceExporter
from .telemetry import TelemetryCollector

__all__ = [
    "BlockFetched",
    "BlockStored",
    "BytesReceived",
    "CommitmentComputed",
    "CountersRegistry",
    "DhtLookup",
    "DirectoryRequest",
    "Event",
    "EventBus",
    "GradientRegistered",
    "GradientsAggregated",
    "IterationFinished",
    "IterationStarted",
    "JsonlTraceExporter",
    "PROTOCOL_EVENTS",
    "PartialUpdateRegistered",
    "Subscription",
    "SyncPhaseEnded",
    "SyncPhaseStarted",
    "TakeoverPerformed",
    "TelemetryCollector",
    "TrainerCompleted",
    "TransferCompleted",
    "TransferStarted",
    "UpdateRegistered",
    "UploadCompleted",
    "VerificationFailed",
]
