"""Causal spans over the event bus.

The bus answers *what happened*; this module reconstructs *what caused
what*.  A :class:`Span` is a named interval of simulated time on one
node; spans nest into a per-iteration :class:`SpanTree` (Dapper-style)
whose root is the iteration itself and whose children are the phases of
Algorithm 1 — upload waves, gradient collection, the |A_i| > 1 sync
exchange, global-update publication, trainer installs — with individual
content fetches and registration instants nested below them.

Causality is reconstructed from the correlation keys stamped onto
events (``iteration``, ``partition_id``, node name, ``started_at``):
no producer knows about spans, and the reconstruction is a pure
function over the event list (:func:`build_span_tree`), so it works
identically on a live bus (via :class:`SpanCollector`) and on replayed
event streams.

Span taxonomy (see ``docs/OBSERVABILITY.md``):

===================  ========================  ==============================
name                 node                      interval
===================  ========================  ==============================
``iteration``        ``session``               round start -> round end
``upload``           trainer                   first partition put -> all acks
``register``         trainer                   instant: directory accepted
``collect``          aggregator                collection start -> aggregated
``fetch``            any client                one content retrieval
``sync``             aggregator                partial-update exchange
``publish_update``   aggregator                global update put -> registered
``install``          trainer                   upload done -> model installed
``commit``           participant               instant: commitment computed
``partial_update``   aggregator                instant: partial registered
``takeover``         aggregator                instant: covered a silent peer
``verify_failed``    scope                     instant: a check failed
``snapshot``         directory                 instant: map sealed to IPFS
===================  ========================  ==============================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from .bus import EventBus, Subscription
from .events import (
    BlockFetched,
    CommitmentComputed,
    Event,
    GradientRegistered,
    GradientsAggregated,
    IterationFinished,
    IterationStarted,
    PROTOCOL_EVENTS,
    PartialUpdateRegistered,
    SnapshotSealed,
    SyncPhaseEnded,
    SyncPhaseStarted,
    TakeoverPerformed,
    TrainerCompleted,
    UpdateRegistered,
    UploadCompleted,
    VerificationFailed,
)

__all__ = ["Span", "SpanTree", "SpanCollector", "build_span_tree",
           "SPAN_EVENTS"]

#: Everything the span reconstruction consumes.
SPAN_EVENTS = PROTOCOL_EVENTS + (
    SyncPhaseStarted,
    PartialUpdateRegistered,
    SnapshotSealed,
    BlockFetched,
)

#: Synthetic node name of the per-iteration root span.
SESSION_NODE = "session"


@dataclass
class Span:
    """A named interval of simulated time on one node.

    ``partition_id`` is the protocol correlation key (None when the span
    covers several partitions, e.g. a trainer's whole upload wave).
    ``meta`` carries span-specific extras (bytes moved, provider name,
    deadlines, ...).
    """

    name: str
    node: str
    start: float
    end: float
    iteration: int
    partition_id: Optional[int] = None
    parent: Optional["Span"] = field(default=None, repr=False)
    children: List["Span"] = field(default_factory=list, repr=False)
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def is_instant(self) -> bool:
        return self.end == self.start

    def add_child(self, child: "Span") -> "Span":
        child.parent = self
        self.children.append(child)
        return child

    @property
    def self_time(self) -> float:
        """Duration not covered by child spans (merged, clipped)."""
        if not self.children:
            return self.duration
        intervals = sorted(
            (max(self.start, child.start), min(self.end, child.end))
            for child in self.children
        )
        covered = 0.0
        cursor = self.start
        for lo, hi in intervals:
            if hi <= cursor:
                continue
            covered += hi - max(lo, cursor)
            cursor = max(cursor, hi)
        return self.duration - covered

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # compact: trees get large
        partition = (f" p{self.partition_id}"
                     if self.partition_id is not None else "")
        return (f"<Span {self.name} {self.node}{partition} "
                f"[{self.start:.4f}, {self.end:.4f}]>")


class SpanTree:
    """One iteration's spans, rooted at the ``iteration`` span."""

    def __init__(self, root: Span):
        self.root = root

    @property
    def iteration(self) -> int:
        return self.root.iteration

    def __iter__(self) -> Iterator[Span]:
        return self.root.walk()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.walk())

    def spans(self, name: Optional[str] = None,
              node: Optional[str] = None) -> List[Span]:
        """All spans, optionally filtered by taxonomy name and/or node."""
        return [
            span for span in self.root.walk()
            if (name is None or span.name == name)
            and (node is None or span.node == node)
        ]

    def named(self, name: str) -> List[Span]:
        return self.spans(name=name)

    def nodes(self) -> List[str]:
        """Every node that owns at least one span, root first."""
        seen: Dict[str, None] = {}
        for span in self.root.walk():
            seen.setdefault(span.node, None)
        return list(seen)

    def by_node(self) -> Dict[str, List[Span]]:
        grouped: Dict[str, List[Span]] = {}
        for span in self.root.walk():
            grouped.setdefault(span.node, []).append(span)
        return grouped


# -- reconstruction ----------------------------------------------------------------


def _enclosing(candidates: Sequence[Span], node: str,
               at: float) -> Optional[Span]:
    """The tightest phase span of ``node`` whose interval contains ``at``."""
    best: Optional[Span] = None
    for span in candidates:
        if span.node != node or not (span.start <= at <= span.end):
            continue
        if best is None or span.duration < best.duration:
            best = span
    return best


def build_span_tree(events: Iterable[Event]) -> Optional[SpanTree]:
    """Reconstruct one iteration's span tree from its event list.

    A pure function: ``events`` is every bus event of a single iteration
    (in publish order; infrastructure events may be interleaved).
    Returns None when the list has no :class:`IterationStarted`.
    """
    events = list(events)
    started: Optional[IterationStarted] = None
    finished_at: Optional[float] = None
    for event in events:
        if isinstance(event, IterationStarted) and started is None:
            started = event
        elif isinstance(event, IterationFinished):
            finished_at = event.at
    if started is None:
        return None
    iteration = started.iteration
    end = finished_at if finished_at is not None else max(
        (event.at for event in events), default=started.at
    )
    root = Span(
        name="iteration", node=SESSION_NODE, start=started.at, end=end,
        iteration=iteration,
        meta={key: value for key, value in
              (("t_train", started.t_train), ("t_sync", started.t_sync))
              if value is not None},
    )

    # Pass 1 — phase spans (direct children of the root).
    phases: List[Span] = []
    upload_of: Dict[str, Span] = {}
    upload_done_at: Dict[str, float] = {}
    sync_started_at: Dict[str, float] = {}
    for event in events:
        if isinstance(event, UploadCompleted):
            span = root.add_child(Span(
                name="upload", node=event.trainer,
                start=(event.started_at if event.started_at is not None
                       else event.at),
                end=event.at, iteration=iteration,
                meta={"mean_put_delay": event.delay},
            ))
            phases.append(span)
            upload_of[event.trainer] = span
            upload_done_at[event.trainer] = event.at
        elif isinstance(event, GradientsAggregated):
            partition = (event.partition_id
                         if event.partition_id >= 0 else None)
            phases.append(root.add_child(Span(
                name="collect", node=event.aggregator,
                start=(event.started_at if event.started_at is not None
                       else root.start),
                end=event.at, iteration=iteration, partition_id=partition,
            )))
        elif isinstance(event, SyncPhaseStarted):
            sync_started_at[event.aggregator] = event.at
        elif isinstance(event, SyncPhaseEnded):
            start = sync_started_at.get(
                event.aggregator, event.at - event.duration
            )
            partition = (event.partition_id
                         if event.partition_id >= 0 else None)
            phases.append(root.add_child(Span(
                name="sync", node=event.aggregator, start=start,
                end=event.at, iteration=iteration, partition_id=partition,
            )))
        elif isinstance(event, UpdateRegistered):
            phases.append(root.add_child(Span(
                name="publish_update", node=event.aggregator,
                start=(event.started_at if event.started_at is not None
                       else event.at),
                end=event.at, iteration=iteration,
                partition_id=event.partition_id,
            )))
        elif isinstance(event, TrainerCompleted):
            phases.append(root.add_child(Span(
                name="install", node=event.trainer,
                start=upload_done_at.get(event.trainer, root.start),
                end=event.at, iteration=iteration,
            )))

    # Pass 2 — instants and fetches, nested under the tightest phase.
    for event in events:
        if isinstance(event, GradientRegistered):
            parent = upload_of.get(event.uploader, root)
            parent.add_child(Span(
                name="register", node=event.uploader, start=event.at,
                end=event.at, iteration=iteration,
                partition_id=event.partition_id,
            ))
        elif isinstance(event, BlockFetched):
            start = (event.started_at if event.started_at is not None
                     else event.at)
            # Attach by midpoint: a fetch ending exactly at its phase's
            # boundary must not fall into the adjacent (tighter) phase.
            parent = _enclosing(
                phases, event.client, (start + event.at) / 2.0
            ) or root
            parent.add_child(Span(
                name="fetch", node=event.client, start=start, end=event.at,
                iteration=iteration,
                meta={"provider": event.node, "bytes": event.size,
                      "cid": (str(event.cid)
                              if event.cid is not None else None)},
            ))
        elif isinstance(event, PartialUpdateRegistered):
            parent = _enclosing(phases, event.aggregator, event.at) or root
            parent.add_child(Span(
                name="partial_update", node=event.aggregator,
                start=event.at, end=event.at, iteration=iteration,
                partition_id=event.partition_id,
            ))
        elif isinstance(event, TakeoverPerformed):
            parent = _enclosing(phases, event.aggregator, event.at) or root
            parent.add_child(Span(
                name="takeover", node=event.aggregator, start=event.at,
                end=event.at, iteration=iteration,
                meta={"peer": event.peer},
            ))
        elif isinstance(event, CommitmentComputed):
            parent = _enclosing(phases, event.participant, event.at) or root
            parent.add_child(Span(
                name="commit", node=event.participant, start=event.at,
                end=event.at, iteration=iteration,
                meta={"wall_seconds": event.seconds},
            ))
        elif isinstance(event, VerificationFailed):
            root.add_child(Span(
                name="verify_failed", node=event.scope, start=event.at,
                end=event.at, iteration=iteration,
                meta={"label": event.label},
            ))
        elif isinstance(event, SnapshotSealed):
            root.add_child(Span(
                name="snapshot", node=event.node, start=event.at,
                end=event.at, iteration=iteration,
                partition_id=event.partition_id,
                meta={"cid": event.cid},
            ))
    return SpanTree(root)


class SpanCollector:
    """Buffers bus events per iteration and builds one tree per round.

    Iteration-scoped events route by their ``iteration`` field;
    infrastructure events (fetches) are attributed to the currently open
    iteration, matching the sequential rounds a session runs.  Trees
    appear in :attr:`trees` as their :class:`IterationFinished` lands.
    """

    def __init__(self, bus: EventBus):
        #: iteration -> completed SpanTree.
        self.trees: Dict[int, SpanTree] = {}
        self._buffer: List[Event] = []
        self._open: Optional[int] = None
        self._subscription: Subscription = bus.subscribe(
            self._handle, *SPAN_EVENTS
        )

    def close(self) -> None:
        """Stop collecting (already-built trees stay available)."""
        self._subscription.cancel()

    def tree(self, iteration: int) -> Optional[SpanTree]:
        return self.trees.get(iteration)

    def latest(self) -> Optional[SpanTree]:
        if not self.trees:
            return None
        return self.trees[max(self.trees)]

    def _handle(self, event: Event) -> None:
        if isinstance(event, IterationStarted):
            self._open = event.iteration
            self._buffer = [event]
            return
        if self._open is None:
            return  # stale event from a closed round: drop, like telemetry
        iteration = getattr(event, "iteration", self._open)
        if iteration != self._open:
            return
        self._buffer.append(event)
        if isinstance(event, IterationFinished):
            tree = build_span_tree(self._buffer)
            if tree is not None:
                self.trees[tree.iteration] = tree
            self._buffer = []
            self._open = None
