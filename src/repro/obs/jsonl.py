"""Stream the event stream to a JSON-lines file.

One JSON object per line, one line per event::

    {"event": "TransferCompleted", "at": 1.04, "src": "trainer-0", ...}

Every record has ``event`` (the event class name) and ``at`` (simulated
seconds); the remaining keys are the event dataclass's fields.  Values
that are not JSON-native (e.g. CIDs) are stringified.  The format is
tail-able and concatenation-safe — the raw material for timeline
analysis, exposed on the command line as ``python -m repro.cli trace``.
Path destinations are truncated by default; pass ``append=True`` to
extend an existing timeline instead (e.g. across separate runs).

Writes are buffered: encoded lines accumulate until either
``flush_lines`` records or ``flush_bytes`` encoded bytes are pending,
then reach the stream in one ``write`` — at cohort scale the
per-event ``write`` call dominated export cost.  :meth:`~
JsonlTraceExporter.close` (also via the context manager, including on
the error path) always drains the buffer, so a crashed run still
leaves every exported event on disk.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Dict, IO, List, Tuple, Union

from .bus import EventBus

__all__ = ["JsonlTraceExporter"]

#: Default buffered-record and buffered-byte limits before a flush.
DEFAULT_FLUSH_LINES = 256
DEFAULT_FLUSH_BYTES = 64 * 1024


class JsonlTraceExporter:
    """Subscribes to every event and writes each as one JSON line."""

    def __init__(self, bus: EventBus,
                 destination: Union[str, "os.PathLike[str]", IO[str]],
                 append: bool = False,
                 flush_lines: int = DEFAULT_FLUSH_LINES,
                 flush_bytes: int = DEFAULT_FLUSH_BYTES):
        """
        Parameters
        ----------
        bus:
            The bus to export.
        destination:
            A path (opened for writing, closed by :meth:`close`) or any
            object with ``write(str)`` (left open; caller owns it).
        append:
            When ``destination`` is a path, open it in append mode
            instead of truncating.  Ignored for stream destinations.
        flush_lines / flush_bytes:
            Buffered-record / encoded-byte bounds; reaching either
            drains the buffer to the stream.  ``flush_lines=1`` restores
            unbuffered per-event writes.
        """
        if flush_lines < 1:
            raise ValueError("flush_lines must be >= 1")
        if flush_bytes < 1:
            raise ValueError("flush_bytes must be >= 1")
        if hasattr(destination, "write"):
            self._stream: IO[str] = destination  # type: ignore[assignment]
            self._owns_stream = False
        else:
            self._stream = open(os.fspath(destination),
                                "a" if append else "w", encoding="utf-8")
            self._owns_stream = True
        self.flush_lines = int(flush_lines)
        self.flush_bytes = int(flush_bytes)
        self.events_written = 0
        self.flushes = 0
        self._buffer: List[str] = []
        self._buffered_bytes = 0
        self._fields: Dict[type, Tuple[str, ...]] = {}
        self._subscription = bus.subscribe(self._handle)

    # -- lifecycle ---------------------------------------------------------------

    @property
    def buffered(self) -> int:
        """Records encoded but not yet written to the stream."""
        return len(self._buffer)

    def flush(self) -> None:
        """Drain the buffer to the stream (no-op when empty)."""
        if not self._buffer:
            return
        self._stream.write("".join(self._buffer))
        self._buffer.clear()
        self._buffered_bytes = 0
        self.flushes += 1

    def close(self) -> None:
        """Unsubscribe and flush; closes the stream if we opened it."""
        self._subscription.cancel()
        if self._owns_stream:
            if not self._stream.closed:
                self.flush()
                self._stream.close()
        else:
            self.flush()
            self._stream.flush()

    def __enter__(self) -> "JsonlTraceExporter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- event handling ----------------------------------------------------------

    def _handle(self, event) -> None:
        cls = type(event)
        names = self._fields.get(cls)
        if names is None:
            names = tuple(f.name for f in dataclasses.fields(event))
            self._fields[cls] = names
        record = {"event": cls.__name__}
        for name in names:
            record[name] = getattr(event, name)
        line = json.dumps(record, default=str) + "\n"
        self._buffer.append(line)
        self._buffered_bytes += len(line)
        self.events_written += 1
        if (len(self._buffer) >= self.flush_lines
                or self._buffered_bytes >= self.flush_bytes):
            self.flush()
