"""Stream the event stream to a JSON-lines file.

One JSON object per line, one line per event::

    {"event": "TransferCompleted", "at": 1.04, "src": "trainer-0", ...}

Every record has ``event`` (the event class name) and ``at`` (simulated
seconds); the remaining keys are the event dataclass's fields.  Values
that are not JSON-native (e.g. CIDs) are stringified.  The format is
tail-able and concatenation-safe — the raw material for timeline
analysis, exposed on the command line as ``python -m repro.cli trace``.
Path destinations are truncated by default; pass ``append=True`` to
extend an existing timeline instead (e.g. across separate runs).
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Dict, IO, Optional, Tuple, Union

from .bus import EventBus

__all__ = ["JsonlTraceExporter"]


class JsonlTraceExporter:
    """Subscribes to every event and writes each as one JSON line."""

    def __init__(self, bus: EventBus,
                 destination: Union[str, "os.PathLike[str]", IO[str]],
                 append: bool = False):
        """
        Parameters
        ----------
        bus:
            The bus to export.
        destination:
            A path (opened for writing, closed by :meth:`close`) or any
            object with ``write(str)`` (left open; caller owns it).
        append:
            When ``destination`` is a path, open it in append mode
            instead of truncating.  Ignored for stream destinations.
        """
        if hasattr(destination, "write"):
            self._stream: IO[str] = destination  # type: ignore[assignment]
            self._owns_stream = False
        else:
            self._stream = open(os.fspath(destination),
                                "a" if append else "w", encoding="utf-8")
            self._owns_stream = True
        self.events_written = 0
        self._fields: Dict[type, Tuple[str, ...]] = {}
        self._subscription = bus.subscribe(self._handle)

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Unsubscribe and flush; closes the stream if we opened it."""
        self._subscription.cancel()
        if self._owns_stream:
            if not self._stream.closed:
                self._stream.close()
        else:
            self._stream.flush()

    def __enter__(self) -> "JsonlTraceExporter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- event handling ----------------------------------------------------------

    def _handle(self, event) -> None:
        cls = type(event)
        names = self._fields.get(cls)
        if names is None:
            names = tuple(f.name for f in dataclasses.fields(event))
            self._fields[cls] = names
        record = {"event": cls.__name__}
        for name in names:
            record[name] = getattr(event, name)
        self._stream.write(json.dumps(record, default=str) + "\n")
        self.events_written += 1
