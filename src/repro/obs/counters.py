"""Named counters and gauges derived from the event stream.

:class:`CountersRegistry` answers the Sec. VI load questions without any
per-figure instrumentation: directory request volume by kind, DHT
lookups and hops, bytes moved by layer, protocol outcome counts.  It is
an ordinary bus subscriber — attach one to any run::

    counters = CountersRegistry(session.sim.bus)
    session.run(rounds=3)
    print(counters.snapshot())

Counter names are dotted paths (``layer.metric``); see
``docs/OBSERVABILITY.md`` for the stable set.
"""

from __future__ import annotations

from typing import Dict

from .bus import EventBus
from .events import (
    AnomalyDetected,
    BlockEvicted,
    BlockFetched,
    BlockStored,
    CohortLoadApplied,
    CommitmentAccumulated,
    DhtLookup,
    DirectoryRequest,
    FaultHealed,
    FaultInjected,
    GradientRegistered,
    InvariantViolated,
    IterationFinished,
    MergeServed,
    NodeCrashed,
    NodeRestarted,
    PartialUpdateRegistered,
    ParticipantDegraded,
    RetryExhausted,
    SnapshotSealed,
    TakeoverPerformed,
    TrainerCompleted,
    TrainingEvaluated,
    TransferAborted,
    TransferCompleted,
    UpdateRegistered,
    UpdateVerified,
    VerificationFailed,
)

__all__ = ["CountersRegistry"]


class CountersRegistry:
    """Monotonic counters plus last-value gauges over bus events."""

    #: Event type -> handler method name.  Class-level so coverage
    #: tooling can ask which events this registry maps without
    #: instantiating a bus (see ``handled_event_types``).
    _HANDLERS = {
        TransferCompleted: "_on_transfer",
        TransferAborted: "_on_transfer_aborted",
        BlockStored: "_on_block_stored",
        BlockFetched: "_on_block_fetched",
        BlockEvicted: "_on_block_evicted",
        MergeServed: "_on_merge_served",
        DhtLookup: "_on_dht_lookup",
        DirectoryRequest: "_on_directory_request",
        GradientRegistered: "_on_gradient",
        CommitmentAccumulated: "_on_commitment_accumulated",
        PartialUpdateRegistered: "_on_partial",
        UpdateRegistered: "_on_update",
        UpdateVerified: "_on_update_verified",
        VerificationFailed: "_on_verification_failed",
        InvariantViolated: "_on_invariant_violated",
        TakeoverPerformed: "_on_takeover",
        TrainerCompleted: "_on_trainer_completed",
        IterationFinished: "_on_iteration_finished",
        SnapshotSealed: "_on_snapshot_sealed",
        FaultInjected: "_on_fault_injected",
        FaultHealed: "_on_fault_healed",
        NodeCrashed: "_on_node_crashed",
        NodeRestarted: "_on_node_restarted",
        RetryExhausted: "_on_retry_exhausted",
        ParticipantDegraded: "_on_participant_degraded",
        CohortLoadApplied: "_on_cohort_load",
        TrainingEvaluated: "_on_training_evaluated",
        AnomalyDetected: "_on_anomaly_detected",
    }

    @classmethod
    def handled_event_types(cls):
        """The event types this registry maps to counters."""
        return tuple(cls._HANDLERS)

    def __init__(self, bus: EventBus):
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._dispatch = {
            event_type: getattr(self, method)
            for event_type, method in self._HANDLERS.items()
        }
        self._subscription = bus.subscribe(
            self._handle, *self._dispatch.keys()
        )

    def close(self) -> None:
        self._subscription.cancel()

    # -- manual API (for subscribers layering their own measures) ---------------

    def increment(self, name: str, by: float = 1.0) -> float:
        """Add ``by`` to counter ``name``; returns the new value."""
        value = self._counters.get(name, 0.0) + by
        self._counters[name] = value
        return value

    def set_gauge(self, name: str, value: float) -> None:
        """Record the current value of gauge ``name``."""
        self._gauges[name] = value

    def get(self, name: str) -> float:
        """Current value of a counter or gauge (0.0 when never touched)."""
        if name in self._counters:
            return self._counters[name]
        return self._gauges.get(name, 0.0)

    def counters(self) -> Dict[str, float]:
        return dict(self._counters)

    def gauges(self) -> Dict[str, float]:
        return dict(self._gauges)

    def snapshot(self) -> Dict[str, float]:
        """All counters and gauges, sorted by name."""
        merged = {**self._counters, **self._gauges}
        return dict(sorted(merged.items()))

    # -- event handlers ----------------------------------------------------------

    def _handle(self, event) -> None:
        self._dispatch[type(event)](event)

    def _on_transfer(self, event) -> None:
        self.increment("net.transfers")
        self.increment("net.bytes", event.size)

    def _on_transfer_aborted(self, event) -> None:
        self.increment("net.transfers_aborted")
        self.increment("net.bytes_aborted", event.size)

    def _on_block_stored(self, event) -> None:
        self.increment("ipfs.objects_stored")
        self.increment("ipfs.bytes_stored", event.size)

    def _on_block_fetched(self, event) -> None:
        self.increment("ipfs.fetches")
        self.increment("ipfs.bytes_fetched", event.size)

    def _on_block_evicted(self, event) -> None:
        self.increment("ipfs.blocks_evicted")
        self.increment("ipfs.bytes_evicted", event.size)

    def _on_merge_served(self, event) -> None:
        self.increment("ipfs.merges_served")
        self.increment("ipfs.bytes_merged", event.size)

    def _on_dht_lookup(self, event) -> None:
        self.increment("dht.lookups")
        self.increment("dht.hops", event.hops)
        self.increment("dht.providers_found", event.providers)

    def _on_directory_request(self, event) -> None:
        self.increment("directory.requests")
        self.increment(f"directory.requests.{event.kind}")
        if event.shard is not None:
            # Sharded directory only: per-shard load distribution.
            self.increment("dir.shard.requests")
            self.increment(f"dir.shard.{event.shard}.requests")

    def _on_gradient(self, event) -> None:
        self.increment("protocol.gradients_registered")

    def _on_commitment_accumulated(self, event) -> None:
        self.increment("protocol.commitments_accumulated")

    def _on_partial(self, event) -> None:
        self.increment("protocol.partial_updates_registered")

    def _on_update(self, event) -> None:
        self.increment("protocol.updates_registered")

    def _on_update_verified(self, event) -> None:
        self.increment("protocol.updates_verified")
        if not event.ok:
            self.increment("protocol.updates_rejected")

    def _on_verification_failed(self, event) -> None:
        self.increment("protocol.verification_failures")
        self.increment(f"protocol.verification_failures.{event.scope}")

    def _on_invariant_violated(self, event) -> None:
        self.increment("obs.invariant_violations")
        self.increment(f"obs.invariant_violations.{event.invariant}")

    def _on_snapshot_sealed(self, event) -> None:
        self.increment("protocol.snapshots_sealed")

    def _on_takeover(self, event) -> None:
        self.increment("protocol.takeovers")

    def _on_trainer_completed(self, event) -> None:
        self.increment("protocol.trainers_completed")

    def _on_iteration_finished(self, event) -> None:
        self.increment("protocol.iterations")

    def _on_cohort_load(self, event) -> None:
        self.increment("cohort.rounds")
        self.increment("cohort.members_modeled", event.members)
        self.increment("cohort.registrations", event.registrations)
        self.increment("cohort.lookups", event.lookups)
        self.increment("cohort.bytes_up", event.bytes_up)
        self.increment("cohort.bytes_down", event.bytes_down)

    def _on_fault_injected(self, event) -> None:
        self.increment("faults.injected")
        self.increment(f"faults.injected.{event.kind}")

    def _on_fault_healed(self, event) -> None:
        self.increment("faults.healed")

    def _on_node_crashed(self, event) -> None:
        self.increment("ipfs.node_crashes")
        self.increment("ipfs.blocks_lost", event.lost_blocks)

    def _on_node_restarted(self, event) -> None:
        self.increment("ipfs.node_restarts")

    def _on_retry_exhausted(self, event) -> None:
        self.increment("protocol.retries_exhausted")
        self.increment(f"protocol.retries_exhausted.{event.operation}")

    def _on_participant_degraded(self, event) -> None:
        self.increment("protocol.participants_degraded")
        self.increment(f"protocol.participants_degraded.{event.role}")

    def _on_training_evaluated(self, event) -> None:
        self.increment("ml.evaluations")
        self.set_gauge("ml.loss.last", event.loss)
        if event.accuracy is not None:
            self.set_gauge("ml.accuracy.last", event.accuracy)

    def _on_anomaly_detected(self, event) -> None:
        self.increment("obs.anomaly.detected")
        self.increment(f"obs.anomaly.detected.{event.kind}")
        self.set_gauge("obs.anomaly.last_at", event.at)
