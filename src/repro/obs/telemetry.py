"""Telemetry rebuilt as a bus subscriber.

:class:`TelemetryCollector` derives the exact quantities the paper's
evaluation reports (upload/aggregation/synchronization delays, bytes
per aggregator — Sec. V) from the protocol event stream, populating the
same :class:`~repro.core.telemetry.IterationMetrics` /
:class:`~repro.core.telemetry.SessionMetrics` dataclasses the repo has
always exposed.  No protocol class mutates metrics any more; they only
publish events.

Routing: events carry an ``iteration``; the collector only applies them
while that iteration is *open* (between ``IterationStarted`` and
``IterationFinished``).  A stale event — e.g. a directory verification
process that only gets scheduled during the next round — is dropped,
matching the legacy behaviour where the session snapshotted directory
state at round end.
"""

from __future__ import annotations

from typing import Dict, Optional

from .bus import EventBus, Subscription
from .events import (
    BytesReceived,
    CommitmentComputed,
    GradientRegistered,
    GradientsAggregated,
    IterationFinished,
    IterationStarted,
    PROTOCOL_EVENTS,
    ParticipantDegraded,
    SyncPhaseEnded,
    TakeoverPerformed,
    TrainerCompleted,
    UpdateRegistered,
    UploadCompleted,
    VerificationFailed,
)

__all__ = ["TelemetryCollector"]

# Imported lazily so repro.obs stays import-time independent of
# repro.core (whose modules themselves publish repro.obs events).
_metric_types = None


def _metrics_classes():
    global _metric_types
    if _metric_types is None:
        from ..core.telemetry import IterationMetrics, SessionMetrics
        _metric_types = (IterationMetrics, SessionMetrics)
    return _metric_types


class TelemetryCollector:
    """Builds a :class:`SessionMetrics` from the protocol event stream.

    Consumes only :data:`~repro.obs.events.PROTOCOL_EVENTS` — none of
    the samplable firehose families — so bus-level sampling never
    perturbs the ``SessionMetrics`` a run reports (the disjointness is
    pinned by ``tests/test_obs_progress.py``).
    """

    #: Event type -> handler method name (class-level for coverage and
    #: sampling-disjointness tooling; see ``handled_event_types``).
    _HANDLERS = {
        IterationStarted: "_on_started",
        IterationFinished: "_on_finished",
        GradientRegistered: "_on_gradient",
        UpdateRegistered: "_on_update",
        GradientsAggregated: "_on_aggregated",
        UploadCompleted: "_on_upload",
        BytesReceived: "_on_bytes",
        SyncPhaseEnded: "_on_sync_ended",
        CommitmentComputed: "_on_commitment",
        VerificationFailed: "_on_verification_failed",
        TrainerCompleted: "_on_trainer_completed",
        TakeoverPerformed: "_on_takeover",
        ParticipantDegraded: "_on_degraded",
    }

    @classmethod
    def handled_event_types(cls):
        """The event types this collector folds into session metrics."""
        return tuple(cls._HANDLERS)

    def __init__(self, bus: EventBus):
        iteration_cls, session_cls = _metrics_classes()
        self._iteration_cls = iteration_cls
        #: The run's accumulated metrics (same object for the session's
        #: whole lifetime, so holders never see a stale copy).
        self.session = session_cls()
        self._open: Dict[int, object] = {}
        self._dispatch = {
            event_type: getattr(self, method)
            for event_type, method in self._HANDLERS.items()
        }
        self._subscription: Subscription = bus.subscribe(
            self._handle, *PROTOCOL_EVENTS
        )

    def close(self) -> None:
        """Stop collecting (already-recorded metrics stay available)."""
        self._subscription.cancel()

    @property
    def metrics(self):
        """Alias for :attr:`session` (reads like ``session.metrics``)."""
        return self.session

    # -- event handling ----------------------------------------------------------

    def _handle(self, event) -> None:
        self._dispatch[type(event)](event)

    def _current(self, iteration: int) -> Optional[object]:
        return self._open.get(iteration)

    def _on_started(self, event) -> None:
        metrics = self._iteration_cls(
            iteration=event.iteration, started_at=event.at
        )
        self._open[event.iteration] = metrics
        self.session.iterations.append(metrics)

    def _on_finished(self, event) -> None:
        metrics = self._open.pop(event.iteration, None)
        if metrics is not None:
            metrics.finished_at = event.at

    def _on_gradient(self, event) -> None:
        metrics = self._current(event.iteration)
        if metrics is not None and metrics.first_gradient_at is None:
            metrics.first_gradient_at = event.at

    def _on_update(self, event) -> None:
        metrics = self._current(event.iteration)
        if metrics is not None:
            metrics.update_registered_at[event.aggregator] = event.at

    def _on_aggregated(self, event) -> None:
        metrics = self._current(event.iteration)
        if metrics is not None:
            metrics.gradients_aggregated_at[event.aggregator] = event.at

    def _on_upload(self, event) -> None:
        metrics = self._current(event.iteration)
        if metrics is not None:
            metrics.upload_delays[event.trainer] = event.delay

    def _on_bytes(self, event) -> None:
        metrics = self._current(event.iteration)
        if metrics is not None:
            metrics.bytes_received[event.participant] = (
                metrics.bytes_received.get(event.participant, 0.0)
                + event.amount
            )

    def _on_sync_ended(self, event) -> None:
        metrics = self._current(event.iteration)
        if metrics is not None:
            metrics.sync_delays[event.aggregator] = event.duration

    def _on_commitment(self, event) -> None:
        metrics = self._current(event.iteration)
        if metrics is not None:
            metrics.commit_seconds[event.participant] = (
                metrics.commit_seconds.get(event.participant, 0.0)
                + event.seconds
            )

    def _on_verification_failed(self, event) -> None:
        metrics = self._current(event.iteration)
        if metrics is not None:
            metrics.verification_failures.append(event.label)

    def _on_trainer_completed(self, event) -> None:
        metrics = self._current(event.iteration)
        if metrics is not None:
            metrics.trainers_completed.append(event.trainer)

    def _on_takeover(self, event) -> None:
        metrics = self._current(event.iteration)
        if metrics is not None:
            metrics.takeovers.append(event.peer)

    def _on_degraded(self, event) -> None:
        metrics = self._current(event.iteration)
        if metrics is not None:
            metrics.degraded[event.participant] = event.reason
