"""Live run progress: a heartbeat over the event bus.

At figure scale a run finishes before you wonder whether it is alive;
at 10^4-10^5 participants it does not.  :class:`ProgressReporter` is an
ordinary (wildcard) bus subscriber that tracks the run's position —
iteration, simulated clock, events seen — and periodically emits a
*heartbeat* record to stderr and, optionally, a JSONL file:

.. code-block:: json

    {"seq": 3, "label": "p10000", "wall_seconds": 4.71,
     "iteration": 1, "sim_seconds": 7205.0, "events": 182344,
     "events_per_s": 40211.5, "telemetry_bytes": 801792,
     "peak_telemetry_bytes": 811264, "series_retained": 2048,
     "sketch_histograms": 2, "recorder_occupancy": 512}

``seq``/``label``/``wall_seconds``/``iteration``/``sim_seconds``/
``events``/``events_per_s`` are always present; the telemetry and
recorder fields appear when a :class:`~repro.obs.metrics.MetricsRegistry`
or :class:`~repro.obs.forensics.FlightRecorder` is attached.  The
schema is documented in ``docs/OBSERVABILITY.md`` and consumed by
``python -m repro.cli status`` (and by the ``scale --progress`` flag,
which streams one heartbeat file across a whole population sweep).

Heartbeats are paced by *wall* time (default one per second), so the
reporter costs one counter increment and one clock read per event and
never perturbs the simulated clock — determinism contracts are
untouched: the reporter writes *about* the run, never into it.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict, IO, List, Optional, Union

from .bus import EventBus
from .events import IterationFinished, IterationStarted

__all__ = ["ProgressReporter", "read_progress", "format_heartbeat"]


def format_heartbeat(record: Dict[str, object]) -> str:
    """One human-readable line for a heartbeat record."""
    parts = [
        f"[{record.get('label') or 'run'}]",
        f"iter={record.get('iteration', -1)}",
        f"sim={record.get('sim_seconds', 0.0):.1f}s",
        f"events={record.get('events', 0)}",
        f"rate={record.get('events_per_s', 0.0):.0f}/s",
    ]
    peak = record.get("peak_telemetry_bytes")
    if peak is not None:
        parts.append(f"telemetry_peak={peak / 1024.0:.1f}KiB")
    sketches = record.get("sketch_histograms")
    if sketches:
        parts.append(f"sketches={sketches}")
    anomalies = record.get("anomalies")
    if anomalies:
        parts.append(f"anomalies={anomalies}")
    stalls = record.get("wall_stalls")
    if stalls:
        parts.append(f"wall_stalls={stalls}")
    parts.append(f"wall={record.get('wall_seconds', 0.0):.1f}s")
    return " ".join(parts)


class ProgressReporter:
    """Heartbeat subscriber reporting liveness, rates and obs cost.

    Parameters
    ----------
    bus:
        The bus to watch (wildcard subscription).
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; adds
        telemetry-memory and sketch/ring occupancy fields.
    recorder:
        Optional :class:`~repro.obs.forensics.FlightRecorder`; adds its
        ring occupancy.
    watchdog:
        Optional :class:`~repro.obs.anomaly.AnomalyWatchdog`; adds the
        running anomaly count (and kinds once any fired), and each
        heartbeat doubles as the watchdog's wall-paced host loop: it
        calls ``check_wall()``, the one livelock probe the sim-driven
        tick cannot perform on itself.
    stream:
        Human-readable heartbeat destination (default ``sys.stderr``;
        pass ``None`` to disable).
    jsonl:
        Optional path or writable stream receiving one JSON object per
        heartbeat (paths are opened in append mode — a sweep's points
        share one file).
    interval:
        Minimum *wall* seconds between heartbeats.
    label:
        Tag carried in every record (e.g. ``p10000``).
    clock:
        Wall-clock source (monotonic seconds); injectable for tests.
    """

    def __init__(self, bus: EventBus,
                 registry=None, recorder=None, watchdog=None,
                 stream: Optional[IO[str]] = sys.stderr,
                 jsonl: Union[str, "os.PathLike[str]", IO[str], None] = None,
                 interval: float = 1.0,
                 label: str = "",
                 clock=time.monotonic):
        if interval <= 0:
            raise ValueError("heartbeat interval must be positive")
        self.registry = registry
        self.recorder = recorder
        self.watchdog = watchdog
        self.stream = stream
        self.interval = float(interval)
        self.label = label
        self._clock = clock
        if jsonl is None or hasattr(jsonl, "write"):
            self._jsonl: Optional[IO[str]] = jsonl  # type: ignore[assignment]
            self._owns_jsonl = False
        else:
            self._jsonl = open(os.fspath(jsonl), "a", encoding="utf-8")
            self._owns_jsonl = True
        self.events_seen = 0
        self.heartbeats = 0
        self.iteration = -1
        self.sim_seconds = 0.0
        self._started = clock()
        self._last_beat = self._started
        self._last_events = 0
        self._subscription = bus.subscribe(self._handle)

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Emit a final heartbeat, unsubscribe, release the JSONL file."""
        self._subscription.cancel()
        self.heartbeat(force=True)
        if self._owns_jsonl and self._jsonl is not None \
                and not self._jsonl.closed:
            self._jsonl.close()

    def __enter__(self) -> "ProgressReporter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- event handling ----------------------------------------------------------

    def _handle(self, event) -> None:
        self.events_seen += 1
        kind = type(event)
        if kind is IterationStarted or kind is IterationFinished:
            self.iteration = event.iteration
        at = getattr(event, "at", None)
        if at is not None and at > self.sim_seconds:
            self.sim_seconds = at
        if self._clock() - self._last_beat >= self.interval:
            self.heartbeat()

    # -- reporting ---------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """The current heartbeat record (without emitting it)."""
        now = self._clock()
        elapsed = max(now - self._last_beat, 1e-9)
        record: Dict[str, object] = {
            "seq": self.heartbeats,
            "label": self.label,
            "wall_seconds": now - self._started,
            "iteration": self.iteration,
            "sim_seconds": self.sim_seconds,
            "events": self.events_seen,
            "events_per_s":
                (self.events_seen - self._last_events) / elapsed,
        }
        registry = self.registry
        if registry is not None:
            record["telemetry_bytes"] = registry.telemetry_bytes()
            record["peak_telemetry_bytes"] = registry.peak_telemetry_bytes
            record["events_observed"] = registry.events_observed
            record["series_retained"] = sum(
                series.retained for series in registry.series())
            record["sketch_histograms"] = registry.sketch_histograms()
        if self.recorder is not None:
            record["recorder_occupancy"] = self.recorder.occupancy
        watchdog = self.watchdog
        if watchdog is not None:
            watchdog.check_wall()
            record["anomalies"] = len(watchdog.anomalies)
            kinds = watchdog.kinds()
            if kinds:
                record["anomaly_kinds"] = kinds
            if watchdog.wall_stalls:
                record["wall_stalls"] = len(watchdog.wall_stalls)
        return record

    def heartbeat(self, force: bool = False) -> Optional[Dict[str, object]]:
        """Emit one heartbeat (rate-limited unless ``force``)."""
        now = self._clock()
        if not force and now - self._last_beat < self.interval:
            return None
        record = self.snapshot()
        self._last_beat = now
        self._last_events = self.events_seen
        self.heartbeats += 1
        if self.stream is not None:
            print(format_heartbeat(record), file=self.stream)
        if self._jsonl is not None:
            self._jsonl.write(json.dumps(record) + "\n")
            self._jsonl.flush()
        return record


def read_progress(
        source: Union[str, "os.PathLike[str]", IO[str]]
) -> List[Dict[str, object]]:
    """Parse a progress JSONL file into heartbeat records.

    Tolerates a truncated final line (the run may still be writing),
    which is what lets ``cli status`` watch a live run.
    """
    if hasattr(source, "read"):
        text = source.read()
    else:
        with open(os.fspath(source), "r", encoding="utf-8") as handle:
            text = handle.read()
    records: List[Dict[str, object]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            continue  # mid-write tail of a live run
    return records
