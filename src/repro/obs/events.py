"""The event taxonomy: typed records of everything the system does.

Every event is a small frozen dataclass carrying the simulated time it
happened (``at``) plus the facts of the occurrence.  Producers construct
events *only when someone is subscribed* (guarded by
:meth:`~repro.obs.bus.EventBus.wants`), so an unobserved run pays a
single boolean check per emission site.

Two layers:

- **infrastructure events** describe the substrate — network transfers,
  IPFS block storage/retrieval, DHT lookups, directory requests.  They
  carry no iteration number because the substrate does not know about
  training rounds.
- **protocol events** describe Algorithm 1 — registrations, phase
  boundaries, verification outcomes.  They carry ``iteration`` so
  subscribers can attribute them to a training round.

Correlation keys: phase events additionally carry ``(iteration,
partition_id, <node>)`` plus a ``started_at`` timestamp where the phase
has a well-defined begin.  :mod:`repro.obs.spans` reconstructs a causal
span tree from these keys; producers stamp them for free (they are
plain attribute reads) inside the same :meth:`~repro.obs.bus.EventBus.
wants` guards, so the zero-subscriber overhead contract is unchanged.
Correlation fields default to ``None``/``-1`` so alternative producers
(the baselines) remain valid emitters without stamping them.

See ``docs/OBSERVABILITY.md`` for the full schema.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "Event",
    # infrastructure
    "TransferStarted",
    "TransferCompleted",
    "BlockStored",
    "BlockFetched",
    "DhtLookup",
    "DirectoryRequest",
    # protocol
    "IterationStarted",
    "IterationFinished",
    "GradientRegistered",
    "PartialUpdateRegistered",
    "UpdateRegistered",
    "GradientsAggregated",
    "UploadCompleted",
    "BytesReceived",
    "SyncPhaseStarted",
    "SyncPhaseEnded",
    "CommitmentComputed",
    "CommitmentAccumulated",
    "UpdateVerified",
    "VerificationFailed",
    "TrainerCompleted",
    "TakeoverPerformed",
    "SnapshotSealed",
    "MergeServed",
    "BlockEvicted",
    "InvariantViolated",
    "CohortLoadApplied",
    # faults & churn
    "FaultInjected",
    "FaultHealed",
    "TransferAborted",
    "NodeCrashed",
    "NodeRestarted",
    "RetryExhausted",
    "ParticipantDegraded",
    # learning & anomaly telemetry
    "TrainingEvaluated",
    "AnomalyDetected",
    "PROTOCOL_EVENTS",
]


class Event:
    """Marker base class for all observable events."""

    __slots__ = ()


# -- infrastructure events ---------------------------------------------------------


@dataclass(frozen=True)
class TransferStarted(Event):
    """Bytes began moving between two hosts."""

    at: float
    src: str
    dst: str
    size: float


@dataclass(frozen=True)
class TransferCompleted(Event):
    """The last byte of a transfer arrived."""

    at: float
    src: str
    dst: str
    size: float
    started_at: float


@dataclass(frozen=True)
class BlockStored(Event):
    """An IPFS node chunked and stored an object."""

    at: float
    node: str
    cid: str
    size: int


@dataclass(frozen=True)
class BlockFetched(Event):
    """A client successfully retrieved (and verified) content.

    ``started_at`` is when the client began the retrieval (provider
    resolution included), so ``at - started_at`` is the fetch latency;
    None when the producer does not track it.
    """

    at: float
    client: str
    node: str
    cid: str
    size: int
    started_at: Optional[float] = None


@dataclass(frozen=True)
class DhtLookup(Event):
    """One provider-record resolution.

    ``hops`` is the number of routing-table hops charged (0 for the
    flat table-model DHT, the greedy path length under Kademlia).
    ``started_at`` is when the resolution began, so ``at - started_at``
    is the lookup latency; None when the producer does not track it.
    """

    at: float
    querier: Optional[str]
    cid: str
    providers: int
    hops: int
    started_at: Optional[float] = None


@dataclass(frozen=True)
class DirectoryRequest(Event):
    """The directory service dequeued one request for processing.

    ``shard`` names the owning shard when the directory is sharded
    (:class:`~repro.core.dirshard.ShardedDirectory`); it stays ``None``
    on the single well-known server so legacy consumers see identical
    events.
    """

    at: float
    kind: str
    shard: Optional[str] = None


@dataclass(frozen=True)
class MergeServed(Event):
    """A storage node pre-aggregated objects for a merge-and-download.

    ``cids`` are the consumed source objects (Sec. III-E: the client
    never fetches them individually, so this is the only record that
    those blocks were read).
    """

    at: float
    node: str
    cids: tuple
    size: int


@dataclass(frozen=True)
class BlockEvicted(Event):
    """Garbage collection removed an unpinned block from a blockstore."""

    at: float
    node: str
    cid: str
    size: int


@dataclass(frozen=True)
class TransferAborted(Event):
    """An in-flight (or refused) transfer failed before the last byte.

    Emitted when a link outage kills flows crossing it, or when a
    transfer is refused because an endpoint host is offline.  ``reason``
    says which.  The waiting sender/receiver sees a
    :class:`~repro.net.bandwidth.TransferAbortedError`.
    """

    at: float
    src: str
    dst: str
    size: float
    reason: str


@dataclass(frozen=True)
class NodeCrashed(Event):
    """An IPFS storage node's process died.

    ``lost_blocks`` is the number of blocks wiped from its store
    (0 when the disk survives the crash).
    """

    at: float
    node: str
    lost_blocks: int


@dataclass(frozen=True)
class NodeRestarted(Event):
    """A crashed IPFS node came back.

    ``reprovided`` counts the surviving objects whose provider records
    were re-published to the DHT.
    """

    at: float
    node: str
    reprovided: int


@dataclass(frozen=True)
class FaultInjected(Event):
    """The fault injector applied one :class:`~repro.faults.FaultSpec`.

    ``spec_index`` is the spec's position in its plan, so the matching
    :class:`FaultHealed` can be correlated.
    """

    at: float
    kind: str
    target: str
    spec_index: int


@dataclass(frozen=True)
class FaultHealed(Event):
    """A fault window ended and the injector restored the target."""

    at: float
    kind: str
    target: str
    spec_index: int


# -- protocol events ---------------------------------------------------------------


@dataclass(frozen=True)
class IterationStarted(Event):
    """A training round began.

    ``t_train``/``t_sync`` are the round's absolute deadlines (Algorithm
    1's schedule), stamped so timeline subscribers can draw them without
    access to the session's config.
    """

    at: float
    iteration: int
    t_train: Optional[float] = None
    t_sync: Optional[float] = None


@dataclass(frozen=True)
class IterationFinished(Event):
    """All of a round's participant processes have ended."""

    at: float
    iteration: int


@dataclass(frozen=True)
class GradientRegistered(Event):
    """A gradient record was accepted (before the cutoff).

    ``cid`` is the registered content identifier (stringified), stamped
    so forensics can name the exact blob a misbehaving aggregator
    dropped; None when the producer does not stamp it.
    """

    at: float
    iteration: int
    uploader: str
    partition_id: int
    cid: Optional[str] = None


@dataclass(frozen=True)
class PartialUpdateRegistered(Event):
    """An aggregator announced its partial update (|A_i| > 1 sync)."""

    at: float
    iteration: int
    aggregator: str
    partition_id: int


@dataclass(frozen=True)
class UpdateRegistered(Event):
    """A globally updated partition's registration was acknowledged.

    ``started_at`` is when the aggregator began publishing the global
    update (summing contributions, uploading, registering).
    """

    at: float
    iteration: int
    aggregator: str
    partition_id: int
    started_at: Optional[float] = None


@dataclass(frozen=True)
class GradientsAggregated(Event):
    """An aggregator finished collecting its trainers' gradients.

    ``started_at`` is when the aggregator began the collection phase;
    ``partition_id`` correlates the phase with registrations.
    """

    at: float
    iteration: int
    aggregator: str
    partition_id: int = -1
    started_at: Optional[float] = None


@dataclass(frozen=True)
class UploadCompleted(Event):
    """A trainer finished uploading all partitions before the deadline.

    ``delay`` is the paper's upload delay: mean seconds from gradient
    put to store acknowledgment over the trainer's partitions.
    ``started_at`` is when the upload wave began (first partition put).
    """

    at: float
    iteration: int
    trainer: str
    delay: float
    started_at: Optional[float] = None


@dataclass(frozen=True)
class BytesReceived(Event):
    """A participant's download volume for the round (additive)."""

    at: float
    iteration: int
    participant: str
    amount: float


@dataclass(frozen=True)
class SyncPhaseStarted(Event):
    """An aggregator entered the partial-update exchange."""

    at: float
    iteration: int
    aggregator: str
    partition_id: int = -1


@dataclass(frozen=True)
class SyncPhaseEnded(Event):
    """An aggregator left the partial-update exchange."""

    at: float
    iteration: int
    aggregator: str
    duration: float
    partition_id: int = -1


@dataclass(frozen=True)
class CommitmentComputed(Event):
    """Wall-clock seconds spent computing a Pedersen commitment
    (additive per participant)."""

    at: float
    iteration: int
    participant: str
    seconds: float


@dataclass(frozen=True)
class CommitmentAccumulated(Event):
    """The directory folded a gradient commitment into its accumulator.

    ``commitment`` is the contribution just folded in; ``accumulated``
    and ``count`` are the partition's running product and contributor
    count *after* folding.  ``aggregator`` is the aggregator assigned to
    the uploading trainer (None when the assignment is unknown).  The
    values are :class:`~repro.crypto.Commitment` instances — monitors
    recompute the product independently and compare.
    """

    at: float
    iteration: int
    partition_id: int
    uploader: str
    aggregator: Optional[str]
    commitment: object
    accumulated: object
    count: int
    shard: Optional[str] = None


@dataclass(frozen=True)
class UpdateVerified(Event):
    """The directory checked a claimed global update's commitment.

    Emitted for *both* outcomes (``ok``); a failing check is followed by
    a :class:`VerificationFailed`.  ``expected_count`` is the number of
    accumulated gradient contributions, ``claimed_counter`` the
    averaging counter decoded from the claimed blob — a mismatch
    between the two is the dropped/lazy signature.  The commitment
    fields carry :class:`~repro.crypto.Commitment` values for forensic
    cross-checking (e.g. against the previous round's accumulator, the
    replay signature).
    """

    at: float
    iteration: int
    partition_id: int
    aggregator: str
    ok: bool
    expected_count: int
    claimed_counter: float
    expected_commitment: Optional[object] = None
    claimed_commitment: Optional[object] = None
    cid: Optional[str] = None


@dataclass(frozen=True)
class VerificationFailed(Event):
    """A commitment check failed somewhere in the protocol.

    ``scope`` names the checkpoint: ``"update"`` (directory-side global
    update check), ``"partial_update"`` (aggregator-side peer partial
    check) or ``"trainer"`` (trainer-side delegated check).
    ``partition_id``/``aggregator``/``reason`` localize the failure
    (the accused party is the update's uploader for ``"update"``, the
    silent/faulty peer for ``"partial_update"``; None when unknown).
    """

    at: float
    iteration: int
    label: str
    scope: str
    partition_id: int = -1
    aggregator: Optional[str] = None
    reason: str = ""


@dataclass(frozen=True)
class TrainerCompleted(Event):
    """A trainer installed the round's global update."""

    at: float
    iteration: int
    trainer: str


@dataclass(frozen=True)
class TakeoverPerformed(Event):
    """An aggregator covered a silent peer's trainer set."""

    at: float
    iteration: int
    aggregator: str
    peer: str


@dataclass(frozen=True)
class RetryExhausted(Event):
    """An actor gave up on an operation after its retry budget ran out.

    ``operation`` is the logical name (``directory.lookup``,
    ``ipfs.get``, ...); the actor raises
    :class:`~repro.faults.RetryExhaustedError` right after emitting
    this.
    """

    at: float
    actor: str
    operation: str
    attempts: int


@dataclass(frozen=True)
class ParticipantDegraded(Event):
    """A participant lost (part of) a round to a fault.

    ``role`` is ``"trainer"`` or ``"aggregator"``; ``reason`` is a
    human-readable cause (crash interrupt, retry exhaustion, offline
    fault window, missed deadline).  This is what per-iteration
    ``degraded`` telemetry accounting is built from.
    """

    at: float
    iteration: int
    participant: str
    role: str
    reason: str


@dataclass(frozen=True)
class SnapshotSealed(Event):
    """The directory sealed a completed partition map onto IPFS
    (Sec. VI map-snapshot offload)."""

    at: float
    iteration: int
    partition_id: int
    node: str
    cid: str


@dataclass(frozen=True)
class InvariantViolated(Event):
    """An online invariant monitor caught a protocol-level inconsistency.

    Published by :class:`~repro.obs.monitors.InvariantMonitors` (never by
    producers), so counters/metrics/forensics pick violations up like any
    other event.  ``invariant`` is the catalog name (see
    ``docs/OBSERVABILITY.md``), ``subject`` the offending node/object and
    ``detail`` a human-readable explanation.  ``iteration`` is -1 when
    the violation is not attributable to a round (e.g. end-of-session
    leak checks).
    """

    at: float
    iteration: int
    invariant: str
    subject: str
    detail: str


@dataclass(frozen=True)
class CohortLoadApplied(Event):
    """One statistically-modeled trainer cohort applied its round load.

    Published by :class:`~repro.core.cohort.CohortCoordinator` after the
    cohort's aggregate directory registrations, uploads and downloads for
    one iteration went through.  ``members`` is the number of unsampled
    trainers the cohort stands in for; ``registrations``/``lookups`` the
    directory operations charged on their behalf; ``bytes_up``/
    ``bytes_down`` the aggregate payload moved over the cohort's links.
    """

    at: float
    iteration: int
    cohort: str
    members: int
    registrations: int
    lookups: int
    bytes_up: float
    bytes_down: float


@dataclass(frozen=True)
class TrainingEvaluated(Event):
    """A trainer evaluated its model on its local shard for one round.

    Emitted from the ML layer (behind the usual ``bus.wants()`` guard,
    so unobserved runs never pay the evaluation) right after local
    training: ``loss`` is the model's loss on the trainer's shard,
    ``accuracy`` the classification accuracy when the model is a
    classifier (``None`` otherwise), ``samples`` the shard size.  The
    convergence detectors (:mod:`repro.obs.anomaly`) fold these into a
    per-iteration trajectory; evaluation is pure computation — no RNG,
    no simulated-clock interaction — so emitting it never perturbs a
    seeded replay.
    """

    at: float
    iteration: int
    trainer: str
    loss: float
    accuracy: Optional[float] = None
    samples: int = 0


@dataclass(frozen=True)
class AnomalyDetected(Event):
    """An online anomaly detector classified a degradation.

    Published by :class:`~repro.obs.anomaly.AnomalyWatchdog` (never by
    producers), so counters, traces and the forensics flight recorder
    pick anomalies up like any other event — the recorder treats this as
    a seal trigger.  ``kind`` is the catalog name (``retry_storm``,
    ``throughput_collapse``, ``queue_runaway``, ``sim_stall``,
    ``divergence``, ``convergence_stall`` — see
    ``docs/OBSERVABILITY.md``), ``severity`` is ``"warning"`` or
    ``"critical"``, ``detector`` the detector class that fired, and
    ``window`` the trailing detection window in simulated seconds (0
    when the detector is not window-based).  ``evidence`` is a
    canonically ordered tuple of ``(key, value)`` pairs — kept as pairs
    (not a dict) so the event stays hashable and serializes with a
    stable field order; :meth:`evidence_dict` gives the mapping view.
    ``iteration`` is -1 for infrastructure-scoped anomalies.
    """

    at: float
    iteration: int
    kind: str
    severity: str
    detector: str
    window: float = 0.0
    evidence: tuple = ()

    def evidence_dict(self) -> dict:
        """The evidence pairs as a mapping."""
        return dict(self.evidence)


#: The iteration-scoped events :class:`~repro.obs.telemetry
#: .TelemetryCollector` consumes to rebuild the paper's metrics.
PROTOCOL_EVENTS = (
    IterationStarted,
    IterationFinished,
    GradientRegistered,
    UpdateRegistered,
    GradientsAggregated,
    UploadCompleted,
    BytesReceived,
    SyncPhaseEnded,
    CommitmentComputed,
    VerificationFailed,
    TrainerCompleted,
    TakeoverPerformed,
    ParticipantDegraded,
)
