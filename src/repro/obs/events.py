"""The event taxonomy: typed records of everything the system does.

Every event is a small frozen dataclass carrying the simulated time it
happened (``at``) plus the facts of the occurrence.  Producers construct
events *only when someone is subscribed* (guarded by
:meth:`~repro.obs.bus.EventBus.wants`), so an unobserved run pays a
single boolean check per emission site.

Two layers:

- **infrastructure events** describe the substrate — network transfers,
  IPFS block storage/retrieval, DHT lookups, directory requests.  They
  carry no iteration number because the substrate does not know about
  training rounds.
- **protocol events** describe Algorithm 1 — registrations, phase
  boundaries, verification outcomes.  They carry ``iteration`` so
  subscribers can attribute them to a training round.

See ``docs/OBSERVABILITY.md`` for the full schema.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "Event",
    # infrastructure
    "TransferStarted",
    "TransferCompleted",
    "BlockStored",
    "BlockFetched",
    "DhtLookup",
    "DirectoryRequest",
    # protocol
    "IterationStarted",
    "IterationFinished",
    "GradientRegistered",
    "PartialUpdateRegistered",
    "UpdateRegistered",
    "GradientsAggregated",
    "UploadCompleted",
    "BytesReceived",
    "SyncPhaseStarted",
    "SyncPhaseEnded",
    "CommitmentComputed",
    "VerificationFailed",
    "TrainerCompleted",
    "TakeoverPerformed",
    "PROTOCOL_EVENTS",
]


class Event:
    """Marker base class for all observable events."""

    __slots__ = ()


# -- infrastructure events ---------------------------------------------------------


@dataclass(frozen=True)
class TransferStarted(Event):
    """Bytes began moving between two hosts."""

    at: float
    src: str
    dst: str
    size: float


@dataclass(frozen=True)
class TransferCompleted(Event):
    """The last byte of a transfer arrived."""

    at: float
    src: str
    dst: str
    size: float
    started_at: float


@dataclass(frozen=True)
class BlockStored(Event):
    """An IPFS node chunked and stored an object."""

    at: float
    node: str
    cid: str
    size: int


@dataclass(frozen=True)
class BlockFetched(Event):
    """A client successfully retrieved (and verified) content."""

    at: float
    client: str
    node: str
    cid: str
    size: int


@dataclass(frozen=True)
class DhtLookup(Event):
    """One provider-record resolution.

    ``hops`` is the number of routing-table hops charged (0 for the
    flat table-model DHT, the greedy path length under Kademlia).
    """

    at: float
    querier: Optional[str]
    cid: str
    providers: int
    hops: int


@dataclass(frozen=True)
class DirectoryRequest(Event):
    """The directory service dequeued one request for processing."""

    at: float
    kind: str


# -- protocol events ---------------------------------------------------------------


@dataclass(frozen=True)
class IterationStarted(Event):
    """A training round began."""

    at: float
    iteration: int


@dataclass(frozen=True)
class IterationFinished(Event):
    """All of a round's participant processes have ended."""

    at: float
    iteration: int


@dataclass(frozen=True)
class GradientRegistered(Event):
    """A gradient record was accepted (before the cutoff)."""

    at: float
    iteration: int
    uploader: str
    partition_id: int


@dataclass(frozen=True)
class PartialUpdateRegistered(Event):
    """An aggregator announced its partial update (|A_i| > 1 sync)."""

    at: float
    iteration: int
    aggregator: str
    partition_id: int


@dataclass(frozen=True)
class UpdateRegistered(Event):
    """A globally updated partition's registration was acknowledged."""

    at: float
    iteration: int
    aggregator: str
    partition_id: int


@dataclass(frozen=True)
class GradientsAggregated(Event):
    """An aggregator finished collecting its trainers' gradients."""

    at: float
    iteration: int
    aggregator: str


@dataclass(frozen=True)
class UploadCompleted(Event):
    """A trainer finished uploading all partitions before the deadline.

    ``delay`` is the paper's upload delay: mean seconds from gradient
    put to store acknowledgment over the trainer's partitions.
    """

    at: float
    iteration: int
    trainer: str
    delay: float


@dataclass(frozen=True)
class BytesReceived(Event):
    """A participant's download volume for the round (additive)."""

    at: float
    iteration: int
    participant: str
    amount: float


@dataclass(frozen=True)
class SyncPhaseStarted(Event):
    """An aggregator entered the partial-update exchange."""

    at: float
    iteration: int
    aggregator: str


@dataclass(frozen=True)
class SyncPhaseEnded(Event):
    """An aggregator left the partial-update exchange."""

    at: float
    iteration: int
    aggregator: str
    duration: float


@dataclass(frozen=True)
class CommitmentComputed(Event):
    """Wall-clock seconds spent computing a Pedersen commitment
    (additive per participant)."""

    at: float
    iteration: int
    participant: str
    seconds: float


@dataclass(frozen=True)
class VerificationFailed(Event):
    """A commitment check failed somewhere in the protocol.

    ``scope`` names the checkpoint: ``"update"`` (directory-side global
    update check), ``"partial"`` (aggregator-side peer partial check) or
    ``"trainer"`` (trainer-side delegated check).
    """

    at: float
    iteration: int
    label: str
    scope: str


@dataclass(frozen=True)
class TrainerCompleted(Event):
    """A trainer installed the round's global update."""

    at: float
    iteration: int
    trainer: str


@dataclass(frozen=True)
class TakeoverPerformed(Event):
    """An aggregator covered a silent peer's trainer set."""

    at: float
    iteration: int
    aggregator: str
    peer: str


#: The iteration-scoped events :class:`~repro.obs.telemetry
#: .TelemetryCollector` consumes to rebuild the paper's metrics.
PROTOCOL_EVENTS = (
    IterationStarted,
    IterationFinished,
    GradientRegistered,
    UpdateRegistered,
    GradientsAggregated,
    UploadCompleted,
    BytesReceived,
    SyncPhaseEnded,
    CommitmentComputed,
    VerificationFailed,
    TrainerCompleted,
    TakeoverPerformed,
)
