"""The event taxonomy: typed records of everything the system does.

Every event is a small frozen dataclass carrying the simulated time it
happened (``at``) plus the facts of the occurrence.  Producers construct
events *only when someone is subscribed* (guarded by
:meth:`~repro.obs.bus.EventBus.wants`), so an unobserved run pays a
single boolean check per emission site.

Two layers:

- **infrastructure events** describe the substrate — network transfers,
  IPFS block storage/retrieval, DHT lookups, directory requests.  They
  carry no iteration number because the substrate does not know about
  training rounds.
- **protocol events** describe Algorithm 1 — registrations, phase
  boundaries, verification outcomes.  They carry ``iteration`` so
  subscribers can attribute them to a training round.

Correlation keys: phase events additionally carry ``(iteration,
partition_id, <node>)`` plus a ``started_at`` timestamp where the phase
has a well-defined begin.  :mod:`repro.obs.spans` reconstructs a causal
span tree from these keys; producers stamp them for free (they are
plain attribute reads) inside the same :meth:`~repro.obs.bus.EventBus.
wants` guards, so the zero-subscriber overhead contract is unchanged.
Correlation fields default to ``None``/``-1`` so alternative producers
(the baselines) remain valid emitters without stamping them.

See ``docs/OBSERVABILITY.md`` for the full schema.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "Event",
    # infrastructure
    "TransferStarted",
    "TransferCompleted",
    "BlockStored",
    "BlockFetched",
    "DhtLookup",
    "DirectoryRequest",
    # protocol
    "IterationStarted",
    "IterationFinished",
    "GradientRegistered",
    "PartialUpdateRegistered",
    "UpdateRegistered",
    "GradientsAggregated",
    "UploadCompleted",
    "BytesReceived",
    "SyncPhaseStarted",
    "SyncPhaseEnded",
    "CommitmentComputed",
    "VerificationFailed",
    "TrainerCompleted",
    "TakeoverPerformed",
    "SnapshotSealed",
    "PROTOCOL_EVENTS",
]


class Event:
    """Marker base class for all observable events."""

    __slots__ = ()


# -- infrastructure events ---------------------------------------------------------


@dataclass(frozen=True)
class TransferStarted(Event):
    """Bytes began moving between two hosts."""

    at: float
    src: str
    dst: str
    size: float


@dataclass(frozen=True)
class TransferCompleted(Event):
    """The last byte of a transfer arrived."""

    at: float
    src: str
    dst: str
    size: float
    started_at: float


@dataclass(frozen=True)
class BlockStored(Event):
    """An IPFS node chunked and stored an object."""

    at: float
    node: str
    cid: str
    size: int


@dataclass(frozen=True)
class BlockFetched(Event):
    """A client successfully retrieved (and verified) content.

    ``started_at`` is when the client began the retrieval (provider
    resolution included), so ``at - started_at`` is the fetch latency;
    None when the producer does not track it.
    """

    at: float
    client: str
    node: str
    cid: str
    size: int
    started_at: Optional[float] = None


@dataclass(frozen=True)
class DhtLookup(Event):
    """One provider-record resolution.

    ``hops`` is the number of routing-table hops charged (0 for the
    flat table-model DHT, the greedy path length under Kademlia).
    ``started_at`` is when the resolution began, so ``at - started_at``
    is the lookup latency; None when the producer does not track it.
    """

    at: float
    querier: Optional[str]
    cid: str
    providers: int
    hops: int
    started_at: Optional[float] = None


@dataclass(frozen=True)
class DirectoryRequest(Event):
    """The directory service dequeued one request for processing."""

    at: float
    kind: str


# -- protocol events ---------------------------------------------------------------


@dataclass(frozen=True)
class IterationStarted(Event):
    """A training round began.

    ``t_train``/``t_sync`` are the round's absolute deadlines (Algorithm
    1's schedule), stamped so timeline subscribers can draw them without
    access to the session's config.
    """

    at: float
    iteration: int
    t_train: Optional[float] = None
    t_sync: Optional[float] = None


@dataclass(frozen=True)
class IterationFinished(Event):
    """All of a round's participant processes have ended."""

    at: float
    iteration: int


@dataclass(frozen=True)
class GradientRegistered(Event):
    """A gradient record was accepted (before the cutoff)."""

    at: float
    iteration: int
    uploader: str
    partition_id: int


@dataclass(frozen=True)
class PartialUpdateRegistered(Event):
    """An aggregator announced its partial update (|A_i| > 1 sync)."""

    at: float
    iteration: int
    aggregator: str
    partition_id: int


@dataclass(frozen=True)
class UpdateRegistered(Event):
    """A globally updated partition's registration was acknowledged.

    ``started_at`` is when the aggregator began publishing the global
    update (summing contributions, uploading, registering).
    """

    at: float
    iteration: int
    aggregator: str
    partition_id: int
    started_at: Optional[float] = None


@dataclass(frozen=True)
class GradientsAggregated(Event):
    """An aggregator finished collecting its trainers' gradients.

    ``started_at`` is when the aggregator began the collection phase;
    ``partition_id`` correlates the phase with registrations.
    """

    at: float
    iteration: int
    aggregator: str
    partition_id: int = -1
    started_at: Optional[float] = None


@dataclass(frozen=True)
class UploadCompleted(Event):
    """A trainer finished uploading all partitions before the deadline.

    ``delay`` is the paper's upload delay: mean seconds from gradient
    put to store acknowledgment over the trainer's partitions.
    ``started_at`` is when the upload wave began (first partition put).
    """

    at: float
    iteration: int
    trainer: str
    delay: float
    started_at: Optional[float] = None


@dataclass(frozen=True)
class BytesReceived(Event):
    """A participant's download volume for the round (additive)."""

    at: float
    iteration: int
    participant: str
    amount: float


@dataclass(frozen=True)
class SyncPhaseStarted(Event):
    """An aggregator entered the partial-update exchange."""

    at: float
    iteration: int
    aggregator: str
    partition_id: int = -1


@dataclass(frozen=True)
class SyncPhaseEnded(Event):
    """An aggregator left the partial-update exchange."""

    at: float
    iteration: int
    aggregator: str
    duration: float
    partition_id: int = -1


@dataclass(frozen=True)
class CommitmentComputed(Event):
    """Wall-clock seconds spent computing a Pedersen commitment
    (additive per participant)."""

    at: float
    iteration: int
    participant: str
    seconds: float


@dataclass(frozen=True)
class VerificationFailed(Event):
    """A commitment check failed somewhere in the protocol.

    ``scope`` names the checkpoint: ``"update"`` (directory-side global
    update check), ``"partial"`` (aggregator-side peer partial check) or
    ``"trainer"`` (trainer-side delegated check).
    """

    at: float
    iteration: int
    label: str
    scope: str


@dataclass(frozen=True)
class TrainerCompleted(Event):
    """A trainer installed the round's global update."""

    at: float
    iteration: int
    trainer: str


@dataclass(frozen=True)
class TakeoverPerformed(Event):
    """An aggregator covered a silent peer's trainer set."""

    at: float
    iteration: int
    aggregator: str
    peer: str


@dataclass(frozen=True)
class SnapshotSealed(Event):
    """The directory sealed a completed partition map onto IPFS
    (Sec. VI map-snapshot offload)."""

    at: float
    iteration: int
    partition_id: int
    node: str
    cid: str


#: The iteration-scoped events :class:`~repro.obs.telemetry
#: .TelemetryCollector` consumes to rebuild the paper's metrics.
PROTOCOL_EVENTS = (
    IterationStarted,
    IterationFinished,
    GradientRegistered,
    UpdateRegistered,
    GradientsAggregated,
    UploadCompleted,
    BytesReceived,
    SyncPhaseEnded,
    CommitmentComputed,
    VerificationFailed,
    TrainerCompleted,
    TakeoverPerformed,
)
