"""Host-cost profiler: where does the *wall* clock go?

Every other layer of :mod:`repro.obs` measures the simulated clock;
this module measures the host.  A :class:`HostProfiler` hooks the two
places all host work funnels through — the :class:`~repro.sim.Simulator`
dispatch loop and the :class:`~repro.obs.bus.EventBus` subscriber
dispatch — and attributes ``perf_counter_ns`` deltas to a hierarchy of
``(subsystem, phase, actor)`` scopes:

=============  ==============================  =======================
subsystem      phase                           actor
=============  ==============================  =======================
``kernel``     ``dispatch``                    process role (``trainer``,
                                               ``aggregator``,
                                               ``directory``, ``cohort``,
                                               ``msg``, ``xfer``, ...)
``net``        ``recompute``                   --
``crypto``     ``commit``/``verify``/          the role whose dispatch
               ``multiexp``                    frame is active
``ml``         ``train``                       ``trainer``
``directory``  ``serve``                       the request kind
``obs``        ``subscriber``                  the handler owner class
=============  ==============================  =======================

Scope accounting is *exclusive*: a frame's children are subtracted
from its self time, so the self times of all scopes partition the
attributed wall time and subsystem shares sum to ~100%.

Contracts (pinned by ``tests/test_obs_profiling.py``):

- **Zero cost when disabled.**  No hooks exist by default:
  ``sim.profiler``/``bus.profiler`` are ``None`` and the hot paths pay
  one attribute load and one ``is None`` branch — exactly the
  :meth:`EventBus.wants` deal.
- **Never observable by the run.**  The profiler reads the sim clock
  and touches no RNG; fingerprints and seeded replays are
  byte-identical with profiling on or off.
- **Throughput gauge.**  The profiler tracks simulated seconds per
  wall second over the installed window (and samples it over time for
  the Perfetto counter track).

The wall clock itself is an injectable :class:`WallClock`
(:data:`SYSTEM_WALL_CLOCK` by default, :class:`FakeWallClock` in
tests); every ad-hoc ``time.perf_counter`` call site in the repo
(``cli commit-cost``, :func:`repro.analysis.scale.run_scale_point`,
trainer commitment timing) routes through it.

See the "Profiling" section of ``docs/OBSERVABILITY.md`` for the
artifact schema and ``python -m repro.cli profile`` for the end-to-end
command.
"""

from __future__ import annotations

import io
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, IO, List, Optional, Tuple, Union

__all__ = [
    "FakeWallClock",
    "HostProfile",
    "HostProfiler",
    "PROFILE_VERSION",
    "SYSTEM_WALL_CLOCK",
    "ScopeStat",
    "WallClock",
]

PROFILE_VERSION = 1

_NS = 1_000_000_000


class WallClock:
    """Injectable host wall-clock (monotonic, sub-microsecond).

    The single abstraction every wall-time measurement in the repo
    goes through, so tests can substitute :class:`FakeWallClock` and
    assert on deterministic durations.
    """

    __slots__ = ()

    def seconds(self) -> float:
        """Monotonic seconds (``time.perf_counter``)."""
        return time.perf_counter()

    def nanoseconds(self) -> int:
        """Monotonic integer nanoseconds (``time.perf_counter_ns``)."""
        return time.perf_counter_ns()


#: The process-wide default clock.  Components take a ``clock``
#: parameter defaulting to this singleton.
SYSTEM_WALL_CLOCK = WallClock()


class FakeWallClock(WallClock):
    """Deterministic wall clock for tests.

    Every read returns the current value and then advances it by
    ``tick`` seconds, so a sequence of reads yields an arithmetic
    progression; :meth:`advance` injects extra elapsed time.
    """

    __slots__ = ("_now_ns", "tick_ns", "reads")

    def __init__(self, start: float = 0.0, tick: float = 0.0):
        self._now_ns = int(round(start * _NS))
        self.tick_ns = int(round(tick * _NS))
        self.reads = 0

    def nanoseconds(self) -> int:
        value = self._now_ns
        self._now_ns += self.tick_ns
        self.reads += 1
        return value

    def seconds(self) -> float:
        return self.nanoseconds() / _NS

    def advance(self, seconds: float) -> None:
        """Inject ``seconds`` of elapsed wall time."""
        if seconds < 0:
            raise ValueError("cannot advance a monotonic clock backwards")
        self._now_ns += int(round(seconds * _NS))


def _role_from_name(name: str) -> str:
    """Actor role of a kernel process name.

    ``"trainer-3:up:p1" -> "trainer"``, ``"directory:dir.lookup" ->
    "directory"``, ``"cohort-12:i0" -> "cohort"``, ``"round:2" ->
    "round"``.  The head segment with its trailing instance number
    stripped — purely lexical, so the kernel needs no registry of
    roles.
    """
    head = name.split(":", 1)[0]
    stripped = head.rstrip("0123456789").rstrip("-")
    return stripped or head


@dataclass(frozen=True)
class ScopeStat:
    """Aggregated cost of one ``(subsystem, phase, actor)`` scope."""

    subsystem: str
    phase: str
    actor: str
    calls: int
    #: Exclusive wall seconds (children subtracted).
    self_seconds: float
    #: Inclusive wall seconds.
    total_seconds: float

    @property
    def label(self) -> str:
        base = f"{self.subsystem}.{self.phase}"
        return f"{base}.{self.actor}" if self.actor else base

    def to_dict(self) -> Dict[str, Any]:
        return {
            "subsystem": self.subsystem,
            "phase": self.phase,
            "actor": self.actor,
            "calls": self.calls,
            "self_seconds": self.self_seconds,
            "total_seconds": self.total_seconds,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScopeStat":
        return cls(
            subsystem=data["subsystem"],
            phase=data["phase"],
            actor=data.get("actor", ""),
            calls=int(data["calls"]),
            self_seconds=float(data["self_seconds"]),
            total_seconds=float(data["total_seconds"]),
        )


@dataclass(frozen=True)
class HostProfile:
    """An immutable profiler snapshot: the JSON/report artifact."""

    #: The run's manifest fingerprint (``FLSession.fingerprint()``),
    #: so a profile is keyed to the exact scenario that produced it.
    fingerprint: Dict[str, Any] = field(default_factory=dict)
    wall_seconds: float = 0.0
    sim_seconds: float = 0.0
    dispatches: int = 0
    #: Sorted by descending self time.
    scopes: Tuple[ScopeStat, ...] = ()
    #: Periodic ``{"wall_seconds", "sim_seconds", "dispatches"}``
    #: samples over the profiled window (throughput over time).
    samples: Tuple[Dict[str, float], ...] = ()

    # -- derived ----------------------------------------------------------

    @property
    def attributed_seconds(self) -> float:
        """Wall seconds inside any scope (self times partition this)."""
        return sum(scope.self_seconds for scope in self.scopes)

    @property
    def sim_per_wall(self) -> float:
        """The throughput gauge: simulated seconds per wall second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.sim_seconds / self.wall_seconds

    def shares(self) -> Dict[str, float]:
        """Fraction of attributed time per subsystem; sums to ~1.0."""
        attributed = self.attributed_seconds
        if attributed <= 0:
            return {}
        by_subsystem: Dict[str, float] = {}
        for scope in self.scopes:
            by_subsystem[scope.subsystem] = (
                by_subsystem.get(scope.subsystem, 0.0) + scope.self_seconds
            )
        return {
            subsystem: total / attributed
            for subsystem, total in sorted(
                by_subsystem.items(), key=lambda kv: -kv[1])
        }

    def hotspots(self, n: int = 10) -> List[ScopeStat]:
        """The ``n`` most expensive scopes by exclusive time."""
        return list(self.scopes[:max(n, 0)])

    # -- reporting --------------------------------------------------------

    def format(self, top: int = 12) -> str:
        """Human-readable hotspot report."""
        from ..analysis.results import format_table

        lines = [
            f"host-cost profile: {self.sim_seconds:.1f} sim-s in "
            f"{self.wall_seconds:.3f} wall-s "
            f"({self.sim_per_wall:.1f} sim-s/wall-s), "
            f"{self.dispatches} dispatches",
        ]
        coverage = (self.attributed_seconds / self.wall_seconds * 100.0
                    if self.wall_seconds > 0 else 0.0)
        lines.append(
            f"attributed {self.attributed_seconds:.3f} wall-s "
            f"({coverage:.1f}% of window) across {len(self.scopes)} "
            "scope(s)")
        shares = self.shares()
        if shares:
            lines.append("shares: " + " | ".join(
                f"{subsystem} {share * 100.0:.1f}%"
                for subsystem, share in shares.items()))
        attributed = self.attributed_seconds
        rows = []
        for scope in self.hotspots(top):
            share = (scope.self_seconds / attributed * 100.0
                     if attributed > 0 else 0.0)
            rows.append([
                scope.label, scope.calls,
                round(scope.self_seconds, 4),
                round(scope.total_seconds, 4),
                f"{share:.1f}%",
            ])
        if rows:
            lines.append(format_table(
                ["scope", "calls", "self (s)", "total (s)", "share"],
                rows,
            ))
        return "\n".join(lines)

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": PROFILE_VERSION,
            "fingerprint": dict(self.fingerprint),
            "wall_seconds": self.wall_seconds,
            "sim_seconds": self.sim_seconds,
            "sim_per_wall": self.sim_per_wall,
            "dispatches": self.dispatches,
            "attributed_seconds": self.attributed_seconds,
            "shares": self.shares(),
            "scopes": [scope.to_dict() for scope in self.scopes],
            "samples": [dict(sample) for sample in self.samples],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "HostProfile":
        version = data.get("version", PROFILE_VERSION)
        if version != PROFILE_VERSION:
            raise ValueError(f"unsupported profile version {version!r}")
        return cls(
            fingerprint=dict(data.get("fingerprint", {})),
            wall_seconds=float(data.get("wall_seconds", 0.0)),
            sim_seconds=float(data.get("sim_seconds", 0.0)),
            dispatches=int(data.get("dispatches", 0)),
            scopes=tuple(ScopeStat.from_dict(scope)
                         for scope in data.get("scopes", [])),
            samples=tuple(dict(sample)
                          for sample in data.get("samples", [])),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write(self, destination: Union[str, "os.PathLike[str]",
                                       IO[str]]) -> None:
        if hasattr(destination, "write"):
            destination.write(self.to_json())
            return
        with io.open(os.fspath(destination), "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path: Union[str, "os.PathLike[str]"]) -> "HostProfile":
        with io.open(os.fspath(path), "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


class HostProfiler:
    """Attributes host wall time to ``(subsystem, phase, actor)`` scopes.

    Install on a simulator (:meth:`install`) or a whole session
    (:meth:`attach`, which also wires the crypto scopes on the
    session's :class:`~repro.core.verification.PartitionCommitter`
    instances); :meth:`uninstall` removes every hook and finalizes the
    window.  :meth:`profile` snapshots an immutable
    :class:`HostProfile` at any point.

    The hot API is :meth:`begin`/:meth:`end` (a mutable frame, no
    context-manager overhead); :meth:`scope` wraps them for coarse
    call sites.  Frames nest: on :meth:`end`, a frame's elapsed time
    is charged to its own inclusive total, its *exclusive* total
    (elapsed minus children) and its parent's child accumulator — so
    exclusive times always partition the attributed wall time.
    """

    def __init__(self, clock: WallClock = SYSTEM_WALL_CLOCK,
                 sample_interval: float = 0.25):
        if sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        self.clock = clock
        #: (subsystem, phase, actor) -> [calls, self_ns, total_ns]
        self._stats: Dict[Tuple[str, str, str], List[int]] = {}
        #: Open frames: [key, start_ns, child_ns].
        self._stack: List[list] = []
        #: Actor roles of the open kernel dispatch frames.
        self._roles: List[str] = []
        self._role_cache: Dict[str, str] = {}
        self._subscriber_names: Dict[Any, str] = {}
        self.dispatches = 0
        self.samples: List[Dict[str, float]] = []
        self._sample_interval_ns = int(round(sample_interval * _NS))
        self._sim = None
        self._committers: List[Any] = []
        self._wall_start_ns: Optional[int] = None
        self._sim_start = 0.0
        self._next_sample_ns = 0
        #: Finalized (uninstalled) window totals.
        self.wall_seconds = 0.0
        self.sim_seconds = 0.0

    # -- install / uninstall ----------------------------------------------

    @property
    def installed(self) -> bool:
        return self._sim is not None

    def install(self, sim) -> "HostProfiler":
        """Hook the kernel dispatch loop and the bus subscriber dispatch."""
        if self._sim is not None:
            raise RuntimeError("profiler is already installed")
        if sim.profiler is not None:
            raise RuntimeError(
                "another profiler is already installed on this simulator")
        self._sim = sim
        sim.profiler = self
        sim.bus.profiler = self
        now = self.clock.nanoseconds()
        self._wall_start_ns = now
        self._sim_start = sim.now
        self._next_sample_ns = now + self._sample_interval_ns
        return self

    def attach(self, session) -> "HostProfiler":
        """Install on a session and wire its crypto commit/verify scopes."""
        self.install(session.sim)
        seen = set()
        for committer in session.committers.values():
            if id(committer) in seen:
                continue
            seen.add(id(committer))
            committer.profiler = self
            self._committers.append(committer)
        return self

    def uninstall(self) -> None:
        """Remove every hook and fold the window into the totals."""
        sim = self._sim
        if sim is None:
            return
        now = self.clock.nanoseconds()
        self._take_sample(now)
        self.wall_seconds += (now - self._wall_start_ns) / _NS
        self.sim_seconds += sim.now - self._sim_start
        sim.profiler = None
        sim.bus.profiler = None
        for committer in self._committers:
            committer.profiler = None
        self._committers = []
        self._sim = None
        self._wall_start_ns = None

    # -- scope accounting (hot path) --------------------------------------

    def begin(self, subsystem: str, phase: str, actor: str = "") -> list:
        """Open a frame; pass the returned token to :meth:`end`."""
        frame = [(subsystem, phase, actor), self.clock.nanoseconds(), 0]
        self._stack.append(frame)
        return frame

    def end(self, frame: list) -> int:
        """Close ``frame``; returns the clock reading (nanoseconds)."""
        now = self.clock.nanoseconds()
        stack = self._stack
        if stack and stack[-1] is frame:
            stack.pop()
        else:  # pragma: no cover - only on mispaired begin/end
            try:
                stack.remove(frame)
            except ValueError:
                return now
        key, start_ns, child_ns = frame
        elapsed = now - start_ns
        stat = self._stats.get(key)
        if stat is None:
            self._stats[key] = stat = [0, 0, 0]
        stat[0] += 1
        stat[1] += elapsed - child_ns
        stat[2] += elapsed
        if stack:
            stack[-1][2] += elapsed
        return now

    def scope(self, subsystem: str, phase: str, actor: str = ""):
        """Context-manager form of :meth:`begin`/:meth:`end`."""
        return _Scope(self, subsystem, phase, actor)

    def current_role(self) -> str:
        """Actor role of the innermost kernel dispatch frame."""
        roles = self._roles
        return roles[-1] if roles else ""

    # -- kernel hook -------------------------------------------------------

    def dispatch_begin(self, event) -> list:
        """Called by ``Simulator.step`` before running callbacks."""
        self.dispatches += 1
        role = self._role_of(event)
        self._roles.append(role)
        return self.begin("kernel", "dispatch", role)

    def dispatch_end(self, frame: list) -> None:
        """Called by ``Simulator.step`` after the callbacks ran."""
        now = self.end(frame)
        self._roles.pop()
        if now >= self._next_sample_ns:
            self._take_sample(now)

    def _role_of(self, event) -> str:
        """Classify a dispatched event by the process it resumes/ends."""
        callbacks = event.callbacks
        owner = None
        if callbacks:
            owner = getattr(callbacks[0], "__self__", None)
        name = getattr(owner, "name", None) if owner is not None else None
        if name is None and hasattr(event, "_generator"):
            name = event.name  # a process ending with no waiters
        if not name or not isinstance(name, str):
            return ""
        role = self._role_cache.get(name)
        if role is None:
            role = _role_from_name(name)
            self._role_cache[name] = role
        return role

    # -- bus hook ----------------------------------------------------------

    def subscriber_name(self, handler) -> str:
        """Attribution label for one bus handler (its owner's class)."""
        name = self._subscriber_names.get(handler)
        if name is None:
            owner = getattr(handler, "__self__", None)
            if owner is not None:
                name = type(owner).__name__
            else:
                name = (getattr(handler, "__qualname__", None)
                        or getattr(handler, "__name__", None)
                        or type(handler).__name__)
            self._subscriber_names[handler] = name
        return name

    # -- throughput sampling ----------------------------------------------

    def _take_sample(self, now_ns: int) -> None:
        if self._wall_start_ns is None or self._sim is None:
            return
        self.samples.append({
            "wall_seconds": (now_ns - self._wall_start_ns) / _NS
                            + self.wall_seconds,
            "sim_seconds": (self._sim.now - self._sim_start)
                           + self.sim_seconds,
            "dispatches": float(self.dispatches),
        })
        self._next_sample_ns = now_ns + self._sample_interval_ns

    # -- snapshot ----------------------------------------------------------

    def profile(self,
                fingerprint: Optional[Dict[str, Any]] = None
                ) -> HostProfile:
        """Snapshot the current attribution as a :class:`HostProfile`."""
        wall = self.wall_seconds
        sim_seconds = self.sim_seconds
        if self._sim is not None:
            now = self.clock.nanoseconds()
            wall += (now - self._wall_start_ns) / _NS
            sim_seconds += self._sim.now - self._sim_start
        scopes = sorted(
            (ScopeStat(subsystem=key[0], phase=key[1], actor=key[2],
                       calls=stat[0], self_seconds=stat[1] / _NS,
                       total_seconds=stat[2] / _NS)
             for key, stat in self._stats.items()),
            key=lambda scope: -scope.self_seconds,
        )
        return HostProfile(
            fingerprint=dict(fingerprint or {}),
            wall_seconds=wall,
            sim_seconds=sim_seconds,
            dispatches=self.dispatches,
            scopes=tuple(scopes),
            samples=tuple(dict(sample) for sample in self.samples),
        )


class _Scope:
    """Reusable-per-call context manager over begin/end."""

    __slots__ = ("_profiler", "_key", "_frame")

    def __init__(self, profiler: HostProfiler, subsystem: str, phase: str,
                 actor: str):
        self._profiler = profiler
        self._key = (subsystem, phase, actor)
        self._frame = None

    def __enter__(self) -> "_Scope":
        self._frame = self._profiler.begin(*self._key)
        return self

    def __exit__(self, *exc_info) -> None:
        self._profiler.end(self._frame)
        self._frame = None
