"""Perfetto / Chrome trace-event export of span trees.

Serialises :class:`~repro.obs.spans.SpanTree` objects into the JSON
object format consumed by ``ui.perfetto.dev`` and ``chrome://tracing``:
one *thread track* per node, one complete slice (``"ph": "X"``) per
span, thread-scoped instant markers (``"ph": "i"``) for zero-length
spans, and metadata records (``"ph": "M"``) naming the process and
threads.  Timestamps are simulated seconds scaled to microseconds, the
trace format's native unit.

The output is a plain dict / JSON file; nothing here imports the bus,
so export works on live collectors and replayed trees alike::

    collector = SpanCollector(session.sim.bus)
    session.run(rounds=3)
    PerfettoExporter(collector.trees.values()).write("timeline.json")

:meth:`PerfettoExporter.add_profile` additionally renders a
:class:`~repro.obs.profiling.HostProfile` — host (wall-clock) cost, a
different time base than the simulated span tracks — under its own
synthetic process (pid 2): one thread track per subsystem carrying the
scope self-time slices laid end to end, plus counter tracks
(``"ph": "C"``) for the sim-seconds-per-wall-second throughput gauge
and the dispatch rate, derived from the profiler's periodic samples.
"""

from __future__ import annotations

import io
import json
import os
from typing import Dict, IO, Iterable, List, Optional, Union

from .spans import SESSION_NODE, Span, SpanTree

__all__ = ["PerfettoExporter"]

#: Single synthetic process all node tracks live under.
_PID = 1
_PROCESS_NAME = "repro"

#: Host-cost profile tracks live under their own process: they measure
#: wall time, not simulated time, and must not share an axis meaning
#: with the span tracks.
_PROFILE_PID = 2
_PROFILE_PROCESS_NAME = "host profile"

#: Simulated seconds -> trace microseconds.
_MICROS = 1_000_000.0


class PerfettoExporter:
    """Accumulates span trees and emits Chrome trace-event JSON."""

    def __init__(self, trees: Optional[Iterable[SpanTree]] = None):
        self._events: List[dict] = []
        self._tids: Dict[str, int] = {}
        self._profile_tid = 1
        if trees is not None:
            for tree in trees:
                self.add_tree(tree)

    def add_tree(self, tree: SpanTree) -> None:
        """Append every span of one iteration's tree to the trace."""
        for span in tree:
            self._events.append(self._slice(span))

    def add_anomalies(self, anomalies: Iterable,
                      label: str = "anomalies") -> None:
        """Render :class:`~repro.obs.events.AnomalyDetected` markers.

        One instant marker per anomaly on a dedicated pid-1 track
        (named via the usual node-track machinery, so it sorts with the
        simulated-time tracks it annotates), plus a cumulative
        ``anomaly.count`` counter track so a glance at the timeline
        shows when detections accelerated.
        """
        tid = self._tid(label)
        for index, anomaly in enumerate(anomalies):
            args = {
                "kind": anomaly.kind,
                "severity": anomaly.severity,
                "detector": anomaly.detector,
                "iteration": anomaly.iteration,
                "window": anomaly.window,
            }
            args.update(anomaly.evidence_dict())
            self._events.append({
                "name": f"anomaly:{anomaly.kind}",
                "cat": "anomaly",
                "ph": "i",
                "s": "t",
                "pid": _PID,
                "tid": tid,
                "ts": anomaly.at * _MICROS,
                "args": args,
            })
            self._events.append({
                "name": "anomaly.count",
                "ph": "C",
                "pid": _PID,
                "ts": anomaly.at * _MICROS,
                "args": {"value": index + 1},
            })

    def add_profile(self, profile, label: str = "profile") -> None:
        """Render a :class:`~repro.obs.profiling.HostProfile` (pid 2).

        Scope self-times become complete slices laid end to end on one
        thread track per subsystem (a synthetic wall-time axis: slice
        *widths* are real attributed seconds, positions are not a
        timeline).  The profiler's periodic samples become ``"C"``
        counter tracks — throughput (sim-s per wall-s) and dispatch
        rate — on the real wall-time axis.
        """
        by_subsystem: Dict[str, List] = {}
        for scope in profile.scopes:
            by_subsystem.setdefault(scope.subsystem, []).append(scope)
        for subsystem, scopes in sorted(by_subsystem.items()):
            tid = self._profile_tid
            self._profile_tid += 1
            self._events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": _PROFILE_PID,
                "tid": tid,
                "args": {"name": f"{label}:{subsystem}"},
            })
            cursor = 0.0
            for scope in sorted(scopes, key=lambda s: -s.self_seconds):
                self._events.append({
                    "name": scope.label,
                    "cat": "host",
                    "ph": "X",
                    "pid": _PROFILE_PID,
                    "tid": tid,
                    "ts": cursor * _MICROS,
                    "dur": scope.self_seconds * _MICROS,
                    "args": {
                        "calls": scope.calls,
                        "self_seconds": scope.self_seconds,
                        "total_seconds": scope.total_seconds,
                    },
                })
                cursor += scope.self_seconds
        prev = {"wall_seconds": 0.0, "sim_seconds": 0.0, "dispatches": 0}
        for sample in profile.samples:
            wall_delta = sample["wall_seconds"] - prev["wall_seconds"]
            if wall_delta <= 0:
                continue
            sim_delta = sample["sim_seconds"] - prev["sim_seconds"]
            dispatch_delta = sample["dispatches"] - prev["dispatches"]
            ts = sample["wall_seconds"] * _MICROS
            self._events.append({
                "name": f"{label}:sim_s_per_wall_s",
                "ph": "C",
                "pid": _PROFILE_PID,
                "ts": ts,
                "args": {"value": sim_delta / wall_delta},
            })
            self._events.append({
                "name": f"{label}:dispatches_per_s",
                "ph": "C",
                "pid": _PROFILE_PID,
                "ts": ts,
                "args": {"value": dispatch_delta / wall_delta},
            })
            prev = sample
        self._events.append({
            "name": "process_name",
            "ph": "M",
            "pid": _PROFILE_PID,
            "args": {"name": _PROFILE_PROCESS_NAME},
        })

    def to_dict(self) -> dict:
        """The complete trace as a JSON-object-format dict."""
        return {
            "traceEvents": self._metadata() + list(self._events),
            "displayTimeUnit": "ms",
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def write(self, destination: Union[str, os.PathLike, IO[str]]) -> None:
        """Write the trace to a path or an open text stream."""
        if hasattr(destination, "write"):
            json.dump(self.to_dict(), destination)
            return
        with io.open(os.fspath(destination), "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh)

    # -- internals ---------------------------------------------------------

    def _tid(self, node: str) -> int:
        """Stable thread id per node; the session root track is tid 0."""
        if node not in self._tids:
            self._tids[node] = 0 if node == SESSION_NODE else (
                max(self._tids.values(), default=0) + 1
            )
        return self._tids[node]

    def _slice(self, span: Span) -> dict:
        args: Dict[str, object] = {"iteration": span.iteration}
        if span.partition_id is not None:
            args["partition_id"] = span.partition_id
        for key, value in span.meta.items():
            args[key] = value
        record: Dict[str, object] = {
            "name": span.name,
            "cat": "span",
            "pid": _PID,
            "tid": self._tid(span.node),
            "ts": span.start * _MICROS,
            "args": args,
        }
        if span.is_instant:
            record["ph"] = "i"
            record["s"] = "t"  # thread-scoped instant
        else:
            record["ph"] = "X"
            record["dur"] = span.duration * _MICROS
        return record

    def _metadata(self) -> List[dict]:
        records: List[dict] = [{
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "args": {"name": _PROCESS_NAME},
        }]
        for node, tid in sorted(self._tids.items(), key=lambda kv: kv[1]):
            records.append({
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"name": node},
            })
        return records
