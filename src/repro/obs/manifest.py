"""The run manifest: one JSON artifact describing a run's shape.

A :class:`RunManifest` is the durable, diffable record every perf PR
needs: the configuration fingerprint (so two manifests are only
compared when they describe the same scenario), the counters, the
histogram summaries (count/sum/min/max/mean and exact p50/p95/p99) and
the resource-series digests.  ``python -m repro.cli metrics`` writes
one per run; ``python -m repro.cli compare`` diffs two with per-metric
relative-change thresholds and exits non-zero on regression, which is
what the CI baseline job runs.

The manifest stores *summaries*, not raw events — the JSONL trace is
the raw record; this is the comparable one.  Nothing in it depends on
wall-clock time, so manifests from the same scenario are bit-identical
across machines (the property the committed golden relies on).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, IO, List, Optional, Union

from .metrics import MetricsRegistry

__all__ = ["RunManifest", "ManifestDiff", "DiffEntry", "compare_manifests",
           "config_fingerprint", "MANIFEST_VERSION"]

MANIFEST_VERSION = 1


def config_fingerprint(config, **extra: Any) -> Dict[str, Any]:
    """A stable description + digest of a (dataclass) configuration.

    ``extra`` carries deployment shape the config does not know
    (trainer count, node count, bandwidth).  The ``digest`` key is a
    SHA-256 over the canonical JSON of everything else, so equality of
    digests means "same scenario".
    """
    if dataclasses.is_dataclass(config):
        described = dataclasses.asdict(config)
    else:
        described = dict(config)
    described.update(extra)
    canonical = json.dumps(described, sort_keys=True, default=str)
    described["digest"] = hashlib.sha256(canonical.encode()).hexdigest()
    return described


@dataclass
class RunManifest:
    """Counters, histogram summaries and series digests of one run."""

    fingerprint: Dict[str, Any] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Dict[str, float]] = field(default_factory=dict)
    series: Dict[str, Dict[str, float]] = field(default_factory=dict)
    version: int = MANIFEST_VERSION

    @classmethod
    def collect(cls, registry: MetricsRegistry,
                fingerprint: Optional[Dict[str, Any]] = None,
                ) -> "RunManifest":
        """Snapshot ``registry`` into a manifest.

        Folds the registry's self-accounting in as gauges
        (``obs.telemetry.bytes`` / ``obs.telemetry.peak_bytes`` /
        ``obs.events.observed``) so ``compare`` gates observability-cost
        regressions alongside protocol metrics.  All three are
        deterministic functions of the event stream and the memory
        model, never of wall-clock time, so manifest byte-identity
        across replays is preserved.
        """
        gauges = dict(sorted(registry.counters.gauges().items()))
        gauges["obs.telemetry.bytes"] = float(registry.telemetry_bytes())
        gauges["obs.telemetry.peak_bytes"] = \
            float(registry.peak_telemetry_bytes)
        gauges["obs.events.observed"] = float(registry.events_observed)
        return cls(
            fingerprint=dict(fingerprint or {}),
            counters=dict(sorted(registry.counters.counters().items())),
            gauges=gauges,
            histograms={
                name: histogram.summary()
                for name, histogram in sorted(registry.histograms().items())
                if histogram.count
            },
            series={
                series.key(): series.digest()
                for series in registry.series()
            },
        )

    # -- (de)serialization -------------------------------------------------------

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(dataclasses.asdict(self), indent=indent,
                          sort_keys=True, default=str) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        raw = json.loads(text)
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in raw.items() if k in known})

    def write(self, destination: Union[str, "os.PathLike[str]", IO[str]],
              ) -> None:
        if hasattr(destination, "write"):
            destination.write(self.to_json())
        else:
            with open(os.fspath(destination), "w", encoding="utf-8") as f:
                f.write(self.to_json())

    @classmethod
    def load(cls, path: Union[str, "os.PathLike[str]"]) -> "RunManifest":
        with open(os.fspath(path), encoding="utf-8") as f:
            return cls.from_json(f.read())

    # -- flattening for comparison -----------------------------------------------

    #: Which summary statistics of each artifact family are compared.
    _HISTOGRAM_STATS = ("mean", "p95")
    _SERIES_STATS = ("mean", "max")

    def comparable_metrics(self) -> Dict[str, float]:
        """A flat ``metric -> value`` view used by :func:`compare_manifests`."""
        flat: Dict[str, float] = dict(self.counters)
        flat.update(self.gauges)
        for name, summary in self.histograms.items():
            for stat in self._HISTOGRAM_STATS:
                if stat in summary:
                    flat[f"{name}.{stat}"] = summary[stat]
        for name, digest in self.series.items():
            for stat in self._SERIES_STATS:
                if stat in digest:
                    flat[f"{name}.{stat}"] = digest[stat]
        return flat


@dataclass(frozen=True)
class DiffEntry:
    """One compared metric."""

    metric: str
    base: float
    current: float
    threshold: float

    @property
    def relative_change(self) -> float:
        if self.base == 0.0:
            return 0.0 if self.current == 0.0 else float("inf")
        return (self.current - self.base) / abs(self.base)


@dataclass
class ManifestDiff:
    """The outcome of comparing two manifests.

    Higher is treated as worse for every metric: the manifest tracks
    delays, sizes, loads and queue depths, where growth is the
    regression direction.  A change below ``-threshold`` is reported as
    an improvement but never fails the comparison.
    """

    regressions: List[DiffEntry] = field(default_factory=list)
    improvements: List[DiffEntry] = field(default_factory=list)
    unchanged: int = 0
    added: List[str] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)
    fingerprint_matches: bool = True

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressions)

    def format(self) -> str:
        from ..analysis import format_table

        rows = []
        for verdict, entries in (("REGRESSION", self.regressions),
                                 ("improvement", self.improvements)):
            for entry in entries:
                change = entry.relative_change
                rows.append([
                    entry.metric, entry.base, entry.current,
                    "inf" if change == float("inf")
                    else f"{change * 100:+.1f}%",
                    verdict,
                ])
        lines = []
        if not self.fingerprint_matches:
            lines.append("WARNING: manifests have different config "
                         "fingerprints; the comparison may be "
                         "apples-to-oranges")
        if rows:
            lines.append(format_table(
                ["metric", "base", "current", "change", "verdict"], rows,
            ))
        lines.append(
            f"{len(self.regressions)} regression(s), "
            f"{len(self.improvements)} improvement(s), "
            f"{self.unchanged} within threshold, "
            f"{len(self.added)} added, {len(self.removed)} removed"
        )
        return "\n".join(lines)


def compare_manifests(
    base: RunManifest,
    current: RunManifest,
    threshold: float = 0.10,
    thresholds: Optional[Dict[str, float]] = None,
) -> ManifestDiff:
    """Diff two manifests metric by metric.

    ``threshold`` is the default relative-change tolerance;
    ``thresholds`` overrides it per metric (keys as produced by
    :meth:`RunManifest.comparable_metrics`, e.g.
    ``"net.transfer.duration.p95"``).  Metrics present in only one
    manifest are listed as added/removed, never as regressions.
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    thresholds = thresholds or {}
    base_metrics = base.comparable_metrics()
    current_metrics = current.comparable_metrics()
    diff = ManifestDiff(
        added=sorted(set(current_metrics) - set(base_metrics)),
        removed=sorted(set(base_metrics) - set(current_metrics)),
        fingerprint_matches=(
            base.fingerprint.get("digest") == current.fingerprint.get("digest")
        ),
    )
    for metric in sorted(set(base_metrics) & set(current_metrics)):
        limit = thresholds.get(metric, threshold)
        entry = DiffEntry(metric=metric, base=base_metrics[metric],
                          current=current_metrics[metric], threshold=limit)
        change = entry.relative_change
        if change > limit:
            diff.regressions.append(entry)
        elif change < -limit:
            diff.improvements.append(entry)
        else:
            diff.unchanged += 1
    diff.regressions.sort(key=lambda e: -e.relative_change)
    diff.improvements.sort(key=lambda e: e.relative_change)
    return diff
