"""Online anomaly watchdog: pluggable detectors over the event bus.

The paper's efficiency claims assume runs do not silently degrade; at
cohort scale nobody is reading Perfetto traces live.  This module turns
the event bus into the "central vantage point" the decentralized
protocol itself lacks: an :class:`AnomalyWatchdog` hosts small online
detectors that watch the typed event stream plus periodically sampled
substrate state, and publish a typed
:class:`~repro.obs.events.AnomalyDetected` back onto the bus whenever a
degradation is classified.  Downstream the anomaly is just another
event: :class:`~repro.obs.counters.CountersRegistry` counts it into
``obs.anomaly.*`` manifest gauges, the
:class:`~repro.obs.forensics.FlightRecorder` treats it as a seal
trigger (anomalies auto-produce incident bundles), Perfetto timelines
show instant markers, and the
:class:`~repro.obs.progress.ProgressReporter` heartbeat carries a
running count.

Detector catalog (``docs/OBSERVABILITY.md`` documents evidence
schemas):

===================== ===========================================
kind                  fired when
===================== ===========================================
``retry_storm``       RetryExhausted/TransferAborted rate spikes
                      against the preceding trailing window
``throughput_collapse`` registrations stall mid-round (trailing-
                      median gap floor) or miss the round deadline
``queue_runaway``     directory inbox depth exceeds its limit
``sim_stall``         a round overruns ``t_sync`` by a margin while
                      still open (livelock tripwire)
``divergence``        per-round mean loss blows past the best seen
``convergence_stall`` no relative loss improvement for ``patience``
                      rounds
===================== ===========================================

Contracts, in order of importance:

- **Pre-sample taps.**  Detector event taps must be disjoint from
  :data:`~repro.obs.bus.SAMPLED_EVENT_FAMILIES` — the same guarantee
  the invariant monitors and the flight recorder rely on — so keyed
  event sampling can never starve a detector.  The watchdog *enforces*
  this at construction.
- **Sim-clock control only.**  Detection windows, tick cadence and
  every threshold read the simulated clock.  The one wall-clock check
  (:meth:`AnomalyWatchdog.check_wall`, the "wall advances but sim
  doesn't" livelock probe) records locally and never publishes: a
  bus event stamped from wall time would differ between replays and
  break byte-identical manifests.
- **Replay-safe.**  Ticks only read state; detectors are deterministic
  functions of the event stream and tick instants; published anomalies
  carry only sim-time evidence.  A watchdog-attached seeded replay is
  byte-identical to another watchdog-attached replay, and its config
  fingerprint equals the bare run's.
- **Fire-once arming.**  Every detector disarms after firing (per
  window or per round) and re-arms only when the triggering condition
  clears, so a sustained fault cannot flood the recorder's bounded
  incident budget.
"""

from __future__ import annotations

import statistics
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from .bus import SAMPLED_EVENT_FAMILIES
from .events import (
    AnomalyDetected,
    GradientRegistered,
    IterationFinished,
    IterationStarted,
    RetryExhausted,
    TrainingEvaluated,
    TransferAborted,
)
from .profiling import SYSTEM_WALL_CLOCK

__all__ = [
    "ANOMALY_KINDS",
    "AnomalyWatchdog",
    "ConvergenceDetector",
    "Detector",
    "QueueRunawayDetector",
    "RetryStormDetector",
    "SimStallDetector",
    "ThroughputCollapseDetector",
]

#: Every anomaly ``kind`` the stock detectors can emit.
ANOMALY_KINDS = (
    "retry_storm",
    "throughput_collapse",
    "queue_runaway",
    "sim_stall",
    "divergence",
    "convergence_stall",
)


class Detector:
    """Base class for online anomaly detectors.

    A detector declares the exact event types it taps
    (:attr:`event_types`; checked against the sampled families by the
    watchdog), folds events in :meth:`observe`, and gets a periodic
    :meth:`on_tick` at the watchdog's sim-clock cadence for conditions
    that are about the *absence* of events.  Both return an iterable of
    :class:`AnomalyDetected` to publish (usually empty).
    """

    #: Catalog name stamped on emitted anomalies.
    kind: str = "anomaly"
    #: Exact event classes to tap; must avoid the sampled families.
    event_types: Tuple[type, ...] = ()

    def observe(self, event) -> Iterable[AnomalyDetected]:
        """Fold one tapped event; yield anomalies to publish."""
        return ()

    def on_tick(self, now: float) -> Iterable[AnomalyDetected]:
        """Periodic check at simulated instant ``now``."""
        return ()

    def finalize(self, now: float) -> Iterable[AnomalyDetected]:
        """Last chance to classify when the watchdog detaches."""
        return ()

    def _anomaly(self, at: float, severity: str, *, kind: Optional[str]
                 = None, iteration: int = -1, window: float = 0.0,
                 **evidence) -> AnomalyDetected:
        """Build a canonically ordered anomaly event."""
        return AnomalyDetected(
            at=at, iteration=iteration, kind=kind or self.kind,
            severity=severity, detector=type(self).__name__,
            window=float(window),
            evidence=tuple(sorted(evidence.items())),
        )


class RetryStormDetector(Detector):
    """Fault-recovery pressure: abort/exhaustion rate spike.

    Keeps the last ``2 * window`` seconds of
    ``RetryExhausted``/``TransferAborted`` timestamps; fires when the
    current window holds at least ``min_events`` events *and* at least
    ``storm_factor`` times the preceding window's count (an empty
    baseline makes any ``min_events`` burst a storm).  Severity is
    ``critical`` when a retry budget actually ran out inside the
    window, ``warning`` for aborts that retries may still ride out.
    Re-arms when the windowed count falls back below ``min_events``.
    """

    kind = "retry_storm"
    event_types = (RetryExhausted, TransferAborted)

    def __init__(self, window: float = 60.0, min_events: int = 3,
                 storm_factor: float = 4.0):
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = float(window)
        self.min_events = int(min_events)
        self.storm_factor = float(storm_factor)
        #: (at, was a RetryExhausted) for the trailing two windows.
        self._times: Deque[Tuple[float, bool]] = deque()
        self._armed = True

    def _prune(self, now: float) -> None:
        horizon = now - 2.0 * self.window
        while self._times and self._times[0][0] < horizon:
            self._times.popleft()

    def _counts(self, now: float) -> Tuple[int, int, int]:
        """(current-window total, exhausted in window, baseline)."""
        edge = now - self.window
        current = exhausted = 0
        for at, was_exhausted in self._times:
            if at >= edge:
                current += 1
                exhausted += was_exhausted
        return current, exhausted, len(self._times) - current

    def observe(self, event):
        now = event.at
        self._times.append((now, isinstance(event, RetryExhausted)))
        self._prune(now)
        current, exhausted, baseline = self._counts(now)
        if not self._armed:
            return ()
        if current < self.min_events:
            return ()
        if current < self.storm_factor * baseline:
            return ()
        self._armed = False
        return (self._anomaly(
            now, "critical" if exhausted else "warning",
            window=self.window, events_in_window=current,
            retry_exhausted=exhausted, baseline_events=baseline,
            storm_factor=self.storm_factor,
        ),)

    def on_tick(self, now):
        if not self._armed:
            self._prune(now)
            current, _, _ = self._counts(now)
            if current < self.min_events:
                self._armed = True
        return ()


class ThroughputCollapseDetector(Detector):
    """Registrations dried up mid-round.

    Two triggers, both scoped to the currently open round and both
    requiring an outstanding shortfall (``observed < expected``; the
    detector disarms the moment the round's expected registration count
    is reached, so bursty-but-complete rounds never alarm):

    - *gap* (``warning``): the time since the round's last
      ``GradientRegistered`` exceeds ``gap_factor`` times the trailing
      median inter-registration gap (floored at ``min_gap``; needs
      ``warmup_gaps`` samples, so the very first registrations cannot
      trip it).
    - *deadline* (``critical``): the round's ``t_train`` deadline
      passed with registrations still missing.

    ``expected_per_iteration`` is trainers x partitions
    (:meth:`AnomalyWatchdog.for_session` wires it); without it the
    detector is inert.
    """

    kind = "throughput_collapse"
    event_types = (IterationStarted, IterationFinished,
                   GradientRegistered)

    def __init__(self, expected_per_iteration: Optional[int] = None,
                 min_gap: float = 30.0, gap_factor: float = 8.0,
                 warmup_gaps: int = 4, gap_history: int = 64):
        self.expected_per_iteration = expected_per_iteration
        self.min_gap = float(min_gap)
        self.gap_factor = float(gap_factor)
        self.warmup_gaps = int(warmup_gaps)
        #: Inter-registration gaps, across rounds (the trailing floor).
        self._gaps: Deque[float] = deque(maxlen=int(gap_history))
        self._iteration = -1
        self._open = False
        self._fired = False
        self._started_at = 0.0
        self._t_train: Optional[float] = None
        self._observed = 0
        self._last_at: Optional[float] = None

    def observe(self, event):
        if isinstance(event, IterationStarted):
            self._iteration = event.iteration
            self._open = True
            self._fired = False
            self._started_at = event.at
            self._t_train = event.t_train
            self._observed = 0
            self._last_at = None
        elif isinstance(event, IterationFinished):
            self._open = False
        elif isinstance(event, GradientRegistered) and self._open:
            if self._last_at is not None:
                self._gaps.append(event.at - self._last_at)
            self._last_at = event.at
            self._observed += 1
        return ()

    def on_tick(self, now):
        expected = self.expected_per_iteration
        if (expected is None or not self._open or self._fired
                or self._observed >= expected):
            return ()
        if (self._last_at is not None
                and len(self._gaps) >= self.warmup_gaps):
            floor = max(self.min_gap,
                        self.gap_factor * statistics.median(self._gaps))
            gap = now - self._last_at
            if gap > floor:
                self._fired = True
                return (self._anomaly(
                    now, "warning", iteration=self._iteration,
                    window=floor, observed=self._observed,
                    expected=expected, gap=gap,
                    median_gap=statistics.median(self._gaps),
                    last_registration_at=self._last_at,
                ),)
        if self._t_train is not None and now > self._t_train:
            self._fired = True
            return (self._anomaly(
                now, "critical", iteration=self._iteration,
                window=self._t_train - self._started_at,
                observed=self._observed, expected=expected,
                t_train=self._t_train,
            ),)
        return ()


class QueueRunawayDetector(Detector):
    """Directory inbox depth crossed its runaway limit.

    Purely tick-driven (no event taps): each tick reads the directory
    endpoint's inbox length — the same probe
    :class:`~repro.obs.metrics.ResourceSampler` samples into
    ``directory.queue.depth`` — and fires ``critical`` above
    ``queue_limit``.  Re-arms once the queue drains to half the limit,
    so one sustained overload produces one anomaly.  Inert without a
    directory.
    """

    kind = "queue_runaway"

    def __init__(self, directory=None, queue_limit: int = 64):
        self.directory = directory
        self.queue_limit = int(queue_limit)
        self._armed = True

    def _depth(self) -> int:
        # Spans all shards on a sharded directory.
        return self.directory.inbox_depth()

    def on_tick(self, now):
        if self.directory is None:
            return ()
        depth = self._depth()
        if self._armed and depth > self.queue_limit:
            self._armed = False
            return (self._anomaly(
                now, "critical", depth=depth,
                queue_limit=self.queue_limit,
            ),)
        if not self._armed and depth <= self.queue_limit // 2:
            self._armed = True
        return ()


class SimStallDetector(Detector):
    """A round is still open well past its sync deadline.

    Healthy rounds end at or before ``t_sync`` (the session's driver
    joins every participant by then); a round that is *still running*
    ``stall_factor`` of its own span past ``t_sync`` means the
    simulation is livelocked in sub-deadline wakeups — the failure mode
    of the sub-ulp bandwidth livelock — or a participant process leaked
    past the barrier.  Fires ``critical`` once per round.
    """

    kind = "sim_stall"
    event_types = (IterationStarted, IterationFinished)

    def __init__(self, stall_factor: float = 0.25):
        self.stall_factor = float(stall_factor)
        self._iteration = -1
        self._open = False
        self._fired = False
        self._started_at = 0.0
        self._t_sync: Optional[float] = None

    def observe(self, event):
        if isinstance(event, IterationStarted):
            self._iteration = event.iteration
            self._open = True
            self._fired = False
            self._started_at = event.at
            self._t_sync = event.t_sync
        elif isinstance(event, IterationFinished):
            self._open = False
        return ()

    def on_tick(self, now):
        if not self._open or self._fired or self._t_sync is None:
            return ()
        margin = self.stall_factor * max(self._t_sync - self._started_at,
                                         0.0)
        if now <= self._t_sync + margin:
            return ()
        self._fired = True
        return (self._anomaly(
            now, "critical", iteration=self._iteration,
            window=margin, t_sync=self._t_sync,
            overrun=now - self._t_sync,
        ),)


class ConvergenceDetector(Detector):
    """Convergence telemetry: per-round loss trajectory watchdog.

    Folds :class:`TrainingEvaluated` into a per-round mean loss
    (closed out on ``IterationFinished``) and keeps the trajectory in
    :attr:`losses`.  Fires ``divergence`` (``critical``) when the round
    mean goes non-finite or exceeds ``divergence_factor`` times the
    best mean seen (plus ``atol``, which keeps exactly-zero synthetic
    losses quiet), and ``convergence_stall`` (``warning``) after
    ``patience`` consecutive rounds without a relative improvement of
    ``min_improvement`` over the best.
    """

    kind = "convergence_stall"
    event_types = (TrainingEvaluated, IterationFinished)

    def __init__(self, patience: int = 5, min_improvement: float = 1e-3,
                 divergence_factor: float = 2.0, atol: float = 1e-6):
        self.patience = int(patience)
        self.min_improvement = float(min_improvement)
        self.divergence_factor = float(divergence_factor)
        self.atol = float(atol)
        #: Closed rounds' ``(iteration, mean loss)`` trajectory.
        self.losses: List[Tuple[int, float]] = []
        self._sums: Dict[int, Tuple[float, int]] = {}
        self._best: Optional[float] = None
        self._since_improvement = 0

    def observe(self, event):
        if isinstance(event, TrainingEvaluated):
            total, count = self._sums.get(event.iteration, (0.0, 0))
            self._sums[event.iteration] = (total + event.loss, count + 1)
            return ()
        if not isinstance(event, IterationFinished):
            return ()
        total, count = self._sums.pop(event.iteration, (0.0, 0))
        if count == 0:
            return ()  # nobody evaluated this round
        mean = total / count
        self.losses.append((event.iteration, mean))
        anomalies = []
        finite = mean == mean and mean not in (float("inf"),
                                               float("-inf"))
        best = self._best
        if not finite or (best is not None
                          and mean > self.divergence_factor * best
                          + self.atol):
            anomalies.append(self._anomaly(
                event.at, "critical", kind="divergence",
                iteration=event.iteration, loss=mean,
                best=best if best is not None else mean,
                divergence_factor=self.divergence_factor,
            ))
        if finite:
            improvement_floor = (self.atol if best is None else
                                 max(self.min_improvement * abs(best),
                                     self.atol))
            if best is None or mean < best - improvement_floor:
                self._best = mean if best is None else min(best, mean)
                self._since_improvement = 0
            else:
                self._best = mean if best is None else min(best, mean)
                self._since_improvement += 1
                if self._since_improvement >= self.patience:
                    self._since_improvement = 0  # re-arm
                    anomalies.append(self._anomaly(
                        event.at, "warning",
                        kind="convergence_stall",
                        iteration=event.iteration, loss=mean,
                        best=self._best,
                        rounds_without_improvement=self.patience,
                    ))
        return anomalies


def default_detectors(directory=None,
                      expected_per_iteration: Optional[int] = None
                      ) -> List[Detector]:
    """The stock detector set, wired to whatever substrate is given."""
    return [
        RetryStormDetector(),
        ThroughputCollapseDetector(
            expected_per_iteration=expected_per_iteration),
        QueueRunawayDetector(directory=directory),
        SimStallDetector(),
        ConvergenceDetector(),
    ]


class AnomalyWatchdog:
    """Hosts detectors over a bus; publishes classified anomalies.

    Subscribes each detector's exact event taps (never the wildcard —
    the hot path must stay cheap) after checking every tap against
    :data:`SAMPLED_EVENT_FAMILIES`, and runs an epoch-validated
    sim-clock tick loop (the :class:`~repro.obs.metrics.ResourceSampler`
    pattern) for absence-of-events conditions.  Every anomaly a
    detector yields is appended to :attr:`anomalies` and published on
    the bus, where counters, forensics, traces and progress pick it up.

    Construct with ``sim=None`` for a pure event-driven watchdog (unit
    tests); :meth:`for_session` wires a live session end to end.  Call
    :meth:`finalize` before draining the simulator with ``sim.run()``
    (same contract as the resource sampler's ``stop``).
    """

    def __init__(self, bus, detectors: Optional[List[Detector]] = None,
                 sim=None, interval: float = 5.0, wall_clock=None,
                 wall_stall_seconds: float = 300.0,
                 autostart: bool = True):
        if interval <= 0:
            raise ValueError("tick interval must be positive")
        self.bus = bus
        self.sim = sim
        self.interval = float(interval)
        self.detectors = (detectors if detectors is not None
                          else default_detectors())
        self.wall_clock = wall_clock or SYSTEM_WALL_CLOCK
        self.wall_stall_seconds = float(wall_stall_seconds)
        #: Every anomaly published, in publish order.
        self.anomalies: List[AnomalyDetected] = []
        #: Host-side livelock observations (never published; see
        #: :meth:`check_wall`).
        self.wall_stalls: List[dict] = []
        self.ticks = 0
        self.active = False
        self._epoch = 0
        self._last_wall: Optional[float] = None
        self._last_sim: Optional[float] = None
        self._taps: Dict[type, List[Detector]] = {}
        for detector in self.detectors:
            for event_type in detector.event_types:
                if issubclass(event_type, SAMPLED_EVENT_FAMILIES):
                    raise ValueError(
                        f"{type(detector).__name__} taps sampled family "
                        f"{event_type.__name__}: watchdog detectors "
                        "must observe pre-sample events only"
                    )
                self._taps.setdefault(event_type, []).append(detector)
        self._subscription = (
            bus.subscribe(self._handle, *self._taps)
            if self._taps else None
        )
        if autostart and sim is not None:
            self.start()

    @classmethod
    def for_session(cls, session, detectors: Optional[List[Detector]]
                    = None, interval: float = 5.0,
                    **kwargs) -> "AnomalyWatchdog":
        """Wire a watchdog to everything an ``FLSession`` owns."""
        if detectors is None:
            expected = (len(session.trainers)
                        * session.config.num_partitions)
            detectors = default_detectors(
                directory=session.directory,
                expected_per_iteration=expected or None,
            )
        return cls(session.sim.bus, detectors=detectors,
                   sim=session.sim, interval=interval, **kwargs)

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Begin ticking every :attr:`interval` simulated seconds."""
        if self.active or self.sim is None:
            return
        self.active = True
        self._schedule()

    def stop(self) -> None:
        """Stop ticking; safe to call more than once."""
        self.active = False
        self._epoch += 1

    def finalize(self) -> List[AnomalyDetected]:
        """Detach: stop ticking, run detector finalizers, unsubscribe.

        Returns the full anomaly list for convenience.
        """
        self.stop()
        now = self.sim.now if self.sim is not None else 0.0
        for detector in self.detectors:
            for anomaly in detector.finalize(now):
                self._publish(anomaly)
        if self._subscription is not None:
            self._subscription.cancel()
            self._subscription = None
        return self.anomalies

    close = finalize

    def __enter__(self) -> "AnomalyWatchdog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.finalize()

    # -- reporting ---------------------------------------------------------------

    def kinds(self) -> List[str]:
        """Sorted distinct anomaly kinds observed so far."""
        return sorted({a.kind for a in self.anomalies})

    def summary(self) -> Dict[str, int]:
        """Anomaly count per kind (sorted by kind)."""
        counts: Dict[str, int] = {}
        for anomaly in self.anomalies:
            counts[anomaly.kind] = counts.get(anomaly.kind, 0) + 1
        return dict(sorted(counts.items()))

    # -- the hot paths -----------------------------------------------------------

    def _publish(self, anomaly: AnomalyDetected) -> None:
        self.anomalies.append(anomaly)
        self.bus.publish(anomaly)

    def _handle(self, event) -> None:
        for detector in self._taps.get(type(event), ()):
            for anomaly in detector.observe(event):
                self._publish(anomaly)

    def _schedule(self) -> None:
        epoch = self._epoch
        wakeup = self.sim.timeout(self.interval)
        wakeup._add_callback(lambda _event: self._tick(epoch))

    def _tick(self, epoch: int) -> None:
        if not self.active or epoch != self._epoch:
            return  # stopped (or restarted) since this wakeup was set
        self.ticks += 1
        now = self.sim.now
        for detector in self.detectors:
            for anomaly in detector.on_tick(now):
                self._publish(anomaly)
        self.check_wall()
        self._schedule()

    # -- the host-side livelock probe --------------------------------------------

    def check_wall(self) -> Optional[dict]:
        """Record a wall-clock stall: wall advances, sim does not.

        Sim-driven ticks cannot observe this themselves (a stuck sim
        clock stops the tick loop too), so the host loop — a progress
        heartbeat, a CLI poll — calls this from wall-paced code.  The
        observation stays local (:attr:`wall_stalls`) and is surfaced
        through the heartbeat only: publishing a wall-time-derived
        event would make replays diverge.
        """
        wall = self.wall_clock.seconds()
        sim_now = self.sim.now if self.sim is not None else 0.0
        if self._last_wall is None or sim_now > self._last_sim:
            self._last_wall, self._last_sim = wall, sim_now
            return None
        elapsed = wall - self._last_wall
        if elapsed <= self.wall_stall_seconds:
            return None
        self._last_wall = wall  # re-arm for the next stall window
        entry = {
            "kind": "wall_stall",
            "sim_now": sim_now,
            "wall_elapsed": elapsed,
        }
        self.wall_stalls.append(entry)
        return entry
