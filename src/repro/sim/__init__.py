"""Discrete-event simulation kernel (SimPy-style, dependency-free).

Public surface:

- :class:`Simulator` — the virtual clock and event queue.
- :class:`Event`, :class:`Timeout`, :class:`Process` — core event types.
- :class:`AllOf` / :class:`AnyOf` — condition events.
- :class:`Interrupt` — exception thrown into interrupted processes.
- :class:`Store`, :class:`FilterStore`, :class:`Resource`,
  :class:`Container` — waitable primitives.
"""

from .core import (
    AllOf,
    AnyOf,
    Condition,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .primitives import Container, FilterStore, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Container",
    "Event",
    "FilterStore",
    "Interrupt",
    "Process",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
]
