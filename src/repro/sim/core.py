"""Discrete-event simulation kernel.

This module provides a small, dependency-free discrete-event engine in the
style of SimPy.  Simulated activities are plain Python generator functions
("processes") that ``yield`` events; the :class:`Simulator` advances a virtual
clock and resumes each process when the event it waits on fires.

The kernel is the foundation for the network emulator (:mod:`repro.net`) and
the simulated IPFS network (:mod:`repro.ipfs`), which together replace the
mininet testbed used in the paper's evaluation.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def worker(sim, name, delay):
...     yield sim.timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.process(worker(sim, "a", 2.0))
>>> _ = sim.process(worker(sim, "b", 1.0))
>>> sim.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional

from ..obs.bus import EventBus

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "Simulator",
]

# Scheduling priorities: events scheduled at the same simulated time are
# processed in priority order, then in FIFO order of scheduling.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1

_PENDING = object()  # sentinel: event value not yet decided


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Raised inside a process that was interrupted by another process.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """An event that may happen at some point in simulated time.

    An event starts *pending*; it becomes *triggered* once :meth:`succeed` or
    :meth:`fail` is called (which schedules it on the simulator queue) and
    *processed* once its callbacks have run.  Processes wait for an event by
    yielding it.

    Events are slotted: at 10^4-10^5 trainers the kernel allocates millions
    of them per run, and dropping the per-instance ``__dict__`` roughly
    halves their footprint.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused",
                 "_heap_entry")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        #: Set when a failure was delivered to at least one waiter, or
        #: explicitly via :meth:`defused`.  Undefused failures crash the run.
        self._defused = False
        #: The queue entry this event is scheduled under, if any.  Kept so
        #: the entry can be tombstoned in O(1) by :meth:`Timeout.cancel`.
        self._heap_entry: Optional[list] = None

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled for processing."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event is not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or failure exception).  Only valid once triggered."""
        if self._value is _PENDING:
            raise SimulationError("event is not yet triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, PRIORITY_NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with a failure carrying ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.sim._schedule(self, PRIORITY_NORMAL)
        return self

    def defused(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    def _add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run via an urgent re-dispatch so late
            # waiters still observe the event.  The callback receives the
            # original event, not the dispatch proxy.
            proxy = Event(self.sim)
            proxy.callbacks.append(lambda _proxy: callback(self))
            proxy._ok = True
            proxy._value = None
            proxy._defused = True
            self.sim._schedule(proxy, PRIORITY_URGENT)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:
        state = (
            "processed" if self.processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule(self, PRIORITY_NORMAL, delay)

    def cancel(self) -> bool:
        """Remove this timeout from the simulator queue before it fires.

        Returns True if the timeout was pending and is now dead, False if
        it already fired (or was already cancelled).  Cancellation is O(1):
        the queue entry is tombstoned in place and skipped (or compacted
        away) by the kernel, so cancelled wakeups no longer pollute the
        heap.  Only cancel timeouts nothing waits on — a process that
        yielded this timeout would never be resumed.
        """
        if self.callbacks is None:
            return False  # already processed
        entry = self._heap_entry
        if entry is None or entry[3] is not self:
            return False  # never scheduled, or already cancelled
        entry[3] = None
        self._heap_entry = None
        # Back to "pending" so `triggered` reflects that it never fired.
        self._value = _PENDING
        self._ok = None
        self.sim._tombstoned()
        return True


class Initialize(Event):
    """Internal event that starts a new process on the next kernel step."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process"):
        super().__init__(sim)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        sim._schedule(self, PRIORITY_URGENT)


class Process(Event):
    """A running process.  Also an event that fires when the process ends.

    The wrapped generator yields :class:`Event` instances; the process is
    resumed with the event's value (or the failure exception is thrown into
    the generator).  The process event succeeds with the generator's return
    value.
    """

    __slots__ = ("_generator", "name", "_target")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(sim)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process currently waits on (None while running).
        self._target: Optional[Event] = None
        Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        """True while the process has not terminated."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process.

        The process is resumed immediately (at the current simulated time),
        no longer waiting for its previous target event.
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.sim.active_process:
            raise SimulationError("a process is not allowed to interrupt itself")
        interrupt_event = Event(self.sim)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._deliver_interrupt)
        self.sim._schedule(interrupt_event, PRIORITY_URGENT)

    def _deliver_interrupt(self, event: Event) -> None:
        """Detach from the current wait target and throw the interrupt."""
        if not self.is_alive:
            # The process ended before the interrupt arrived; drop it.
            return
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        self._resume(event)

    def _resume(self, event: Event) -> None:
        """Resume the generator with the outcome of ``event``."""
        if not self.is_alive:
            return
        if self._target is not None and event is not self._target:
            # Stale wakeup from an event this process no longer waits on.
            return
        self.sim._active_process = self
        try:
            if event._ok:
                next_target = self._generator.send(event._value)
            else:
                event._defused = True
                next_target = self._generator.throw(event._value)
        except StopIteration as stop:
            self._target = None
            self._ok = True
            self._value = stop.value
            self.sim._schedule(self, PRIORITY_NORMAL)
            return
        except BaseException as exc:
            self._target = None
            self._ok = False
            self._value = exc
            self._defused = False
            self.sim._schedule(self, PRIORITY_NORMAL)
            return
        finally:
            self.sim._active_process = None

        if not isinstance(next_target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded a non-event: {next_target!r}"
            )
        self._target = next_target
        next_target._add_callback(self._resume)

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'ended'}>"


class Condition(Event):
    """An event that fires when a predicate over its sub-events holds.

    The condition's value is a dict mapping each *triggered* sub-event to its
    value, in trigger order.  A failing sub-event fails the condition.
    """

    __slots__ = ("_events", "_evaluate", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event],
                 evaluate: Callable[[int, int], bool]):
        super().__init__(sim)
        self._events = list(events)
        self._evaluate = evaluate
        self._count = 0
        for event in self._events:
            if not isinstance(event, Event):
                raise SimulationError(f"{event!r} is not an Event")
            if event.sim is not sim:
                raise SimulationError("cannot mix events from different simulators")
        if not self._events or self._evaluate(len(self._events), 0):
            self.succeed(self._collect())
        else:
            for event in self._events:
                event._add_callback(self._check)

    def _collect(self) -> dict:
        # Only events whose callbacks already ran count as "happened";
        # a Timeout is `triggered` at construction (its value is pre-set)
        # but has not occurred until the kernel processes it.
        return {
            event: event._value
            for event in self._events
            if event.processed and event._ok
        }

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._evaluate(len(self._events), self._count):
            self.succeed(self._collect())


class AllOf(Condition):
    """Condition that fires once *all* sub-events have fired."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, lambda total, done: done == total)


class AnyOf(Condition):
    """Condition that fires once *any* sub-event has fired."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, lambda total, done: done >= 1)


class Simulator:
    """The simulation environment: virtual clock plus event queue."""

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        #: Heap of [time, priority, seq, event] entries.  Entries are lists
        #: so cancellation can tombstone them in place (event slot -> None);
        #: the unique seq guarantees comparisons never reach the event.
        self._queue: List[list] = []
        self._seq = itertools.count()
        self._active_process: Optional[Process] = None
        #: Live tombstone count; when tombstones dominate, the queue is
        #: compacted so cancelled bulk schedules cannot leak memory.
        self._tombstones = 0
        #: The simulation's observability spine: everything built on this
        #: kernel (network, IPFS, protocol roles) publishes typed events
        #: here; telemetry/tracing subscribe.  See :mod:`repro.obs`.
        self.bus = EventBus()
        #: Optional host-cost profiler hook
        #: (:class:`repro.obs.profiling.HostProfiler`).  ``None`` by
        #: default — the disabled path pays one attribute load and one
        #: branch per step, mirroring the ``bus.wants()`` contract.
        self.profiler = None

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event construction -------------------------------------------------

    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def timeout_many(self, delays: Iterable[float],
                     value: Any = None) -> List[Timeout]:
        """Create one timeout per delay in a single bulk schedule.

        Semantically identical to ``[sim.timeout(d, value) for d in delays]``
        (including FIFO tie-breaking by construction order), but batches the
        queue insertion: a large batch is appended and re-heapified in one
        pass instead of sifting each entry individually.  Used for
        fleet-wide schedules (e.g. one wakeup per cohort).
        """
        timeouts: List[Timeout] = []
        entries: List[list] = []
        for delay in delays:
            if delay < 0:
                raise ValueError(f"negative delay {delay}")
            timeout = Timeout.__new__(Timeout)
            Event.__init__(timeout, self)
            timeout.delay = delay
            timeout._ok = True
            timeout._value = value
            entry = [self._now + delay, PRIORITY_NORMAL, next(self._seq),
                     timeout]
            timeout._heap_entry = entry
            entries.append(entry)
            timeouts.append(timeout)
        if len(entries) >= 8 and len(entries) * 4 >= len(self._queue):
            self._queue.extend(entries)
            heapq.heapify(self._queue)
        else:
            for entry in entries:
                heapq.heappush(self._queue, entry)
        return timeouts

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start ``generator`` as a new process."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when every event in ``events`` has fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any event in ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------

    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        entry = [self._now + delay, priority, next(self._seq), event]
        event._heap_entry = entry
        heapq.heappush(self._queue, entry)

    def _tombstoned(self) -> None:
        """Account a cancelled entry; compact once tombstones dominate."""
        self._tombstones += 1
        if self._tombstones > 64 and self._tombstones * 2 > len(self._queue):
            self._queue = [e for e in self._queue if e[3] is not None]
            heapq.heapify(self._queue)
            self._tombstones = 0

    def _purge_head(self) -> None:
        """Drop cancelled entries from the front of the queue."""
        queue = self._queue
        while queue and queue[0][3] is None:
            heapq.heappop(queue)
            self._tombstones -= 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        self._purge_head()
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        queue = self._queue
        while True:
            if not queue:
                raise SimulationError("no scheduled events")
            entry = heapq.heappop(queue)
            event = entry[3]
            if event is not None:
                break
            self._tombstones -= 1
        self._now = entry[0]
        profiler = self.profiler
        if profiler is None:
            callbacks, event.callbacks = event.callbacks, None
            for callback in callbacks:
                callback(event)
        else:
            # Classify before detaching: the dispatched event's first
            # callback identifies the process (and so the actor role)
            # this step's host work belongs to.
            frame = profiler.dispatch_begin(event)
            callbacks, event.callbacks = event.callbacks, None
            try:
                for callback in callbacks:
                    callback(event)
            finally:
                profiler.dispatch_end(frame)
        if not event._ok and not event._defused:
            exc = event._value
            raise exc

    def run_until(self, event: Event) -> None:
        """Process events until ``event`` has been processed.

        Unlike :meth:`run`, this stops as soon as the awaited event's
        callbacks ran, leaving later-scheduled events (e.g. pending
        request timeouts that lost their race) on the queue — the clock
        then reflects the event's time, not the queue drain.
        """
        while not event.processed:
            self._purge_head()
            if not self._queue:
                raise SimulationError(
                    "deadlock: awaited event can never fire"
                )
            self.step()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock reaches ``until``.

        When ``until`` is given and the queue has not drained by then, the
        clock is advanced exactly to ``until``.
        """
        if until is not None and until < self._now:
            raise ValueError(f"until={until} is in the past (now={self._now})")
        while True:
            self._purge_head()
            if not self._queue:
                break
            if until is not None and self._queue[0][0] > until:
                self._now = until
                return
            self.step()
        if until is not None:
            self._now = until
