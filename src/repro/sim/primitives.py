"""Waitable synchronization primitives for the simulation kernel.

These mirror the classic discrete-event primitives:

- :class:`Store` — an unbounded-or-bounded FIFO buffer of Python objects,
  with blocking ``put``/``get``.
- :class:`FilterStore` — a store whose ``get`` may select by predicate.
- :class:`Resource` — a counted resource (semaphore) with blocking ``request``.
- :class:`Container` — a continuous-level tank with blocking ``put``/``get``.

All operations return :class:`~repro.sim.core.Event` objects to be yielded
from a process.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional

from .core import Event, Simulator, SimulationError

__all__ = ["Store", "FilterStore", "Resource", "Container"]


class _StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.sim)
        self.item = item


class _StoreGet(Event):
    __slots__ = ("predicate",)

    def __init__(self, store: "Store",
                 predicate: Optional[Callable[[Any], bool]] = None):
        super().__init__(store.sim)
        self.predicate = predicate


class Store:
    """FIFO buffer with blocking put/get.

    ``capacity`` bounds the number of buffered items; ``float("inf")`` (the
    default) makes puts never block.
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.items: List[Any] = []
        self._put_waiters: Deque[_StorePut] = deque()
        self._get_waiters: Deque[_StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Store ``item``; the returned event fires once it is buffered."""
        event = _StorePut(self, item)
        self._put_waiters.append(event)
        self._dispatch()
        return event

    def get(self) -> Event:
        """Retrieve the oldest item; the event's value is the item."""
        event = _StoreGet(self)
        self._get_waiters.append(event)
        self._dispatch()
        return event

    def _match(self, get_event: _StoreGet) -> Optional[int]:
        """Index of the buffered item satisfying ``get_event``, or None."""
        if not self.items:
            return None
        if get_event.predicate is None:
            return 0
        for index, item in enumerate(self.items):
            if get_event.predicate(item):
                return index
        return None

    def _dispatch(self) -> None:
        """Match puts to free capacity and gets to buffered items."""
        progress = True
        while progress:
            progress = False
            while self._put_waiters and len(self.items) < self.capacity:
                put_event = self._put_waiters.popleft()
                self.items.append(put_event.item)
                put_event.succeed()
                progress = True
            remaining: Deque[_StoreGet] = deque()
            while self._get_waiters:
                get_event = self._get_waiters.popleft()
                index = self._match(get_event)
                if index is None:
                    remaining.append(get_event)
                else:
                    item = self.items.pop(index)
                    get_event.succeed(item)
                    progress = True
            self._get_waiters = remaining


class FilterStore(Store):
    """A store whose consumers may select items by predicate."""

    def get(self, predicate: Optional[Callable[[Any], bool]] = None) -> Event:
        """Retrieve the oldest item matching ``predicate`` (any, if None)."""
        event = _StoreGet(self, predicate)
        self._get_waiters.append(event)
        self._dispatch()
        return event


class _ResourceRequest(Event):
    __slots__ = ("resource", "_released")

    def __init__(self, resource: "Resource"):
        super().__init__(resource.sim)
        self.resource = resource
        self._released = False

    def release(self) -> None:
        self.resource.release(self)


class Resource:
    """A counted resource with ``capacity`` concurrent slots.

    Usage::

        request = resource.request()
        yield request
        try:
            ...  # hold the resource
        finally:
            resource.release(request)
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.users: List[_ResourceRequest] = []
        self._waiters: Deque[_ResourceRequest] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self) -> _ResourceRequest:
        """Request a slot; the returned event fires once granted."""
        event = _ResourceRequest(self)
        self._waiters.append(event)
        self._dispatch()
        return event

    def release(self, request: _ResourceRequest) -> None:
        """Release a previously granted slot (idempotent)."""
        if request._released:
            return
        if request in self.users:
            self.users.remove(request)
            request._released = True
            self._dispatch()
        elif request in self._waiters:
            # Cancelled before being granted.
            self._waiters.remove(request)
            request._released = True
        else:
            raise SimulationError("release of a request not issued here")

    def _dispatch(self) -> None:
        while self._waiters and len(self.users) < self.capacity:
            request = self._waiters.popleft()
            self.users.append(request)
            request.succeed(request)


class _ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, sim: Simulator, amount: float):
        super().__init__(sim)
        self.amount = amount


class _ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, sim: Simulator, amount: float):
        super().__init__(sim)
        self.amount = amount


class Container:
    """A continuous-level reservoir with blocking put/get of amounts."""

    def __init__(self, sim: Simulator, capacity: float = float("inf"),
                 init: float = 0.0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init must be within [0, capacity]")
        self.sim = sim
        self.capacity = capacity
        self._level = float(init)
        self._put_waiters: Deque[_ContainerPut] = deque()
        self._get_waiters: Deque[_ContainerGet] = deque()

    @property
    def level(self) -> float:
        """Current stored amount."""
        return self._level

    def put(self, amount: float) -> Event:
        if amount <= 0:
            raise ValueError("amount must be positive")
        if amount > self.capacity:
            raise ValueError("amount exceeds capacity, would never fit")
        event = _ContainerPut(self.sim, amount)
        self._put_waiters.append(event)
        self._dispatch()
        return event

    def get(self, amount: float) -> Event:
        if amount <= 0:
            raise ValueError("amount must be positive")
        event = _ContainerGet(self.sim, amount)
        self._get_waiters.append(event)
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._put_waiters:
                put_event = self._put_waiters[0]
                if self._level + put_event.amount <= self.capacity:
                    self._put_waiters.popleft()
                    self._level += put_event.amount
                    put_event.succeed()
                    progress = True
            if self._get_waiters:
                get_event = self._get_waiters[0]
                if self._level >= get_event.amount:
                    self._get_waiters.popleft()
                    self._level -= get_event.amount
                    get_event.succeed(get_event.amount)
                    progress = True
