"""Sec. V "Impact of verifiability on performance" — end-to-end view.

Three runs on the same deployment:

- ``plain``: a 20k-parameter model without verifiability,
- ``verifiable``: the same with real Pedersen commitments end to end
  (commit at trainers, accumulate at the directory, verify the update),
- ``verifiable + cost model``: additionally charging the measured Fig. 3
  slope (~120 us/param in pure Python) inside the *simulated* clock, so
  the iteration timeline shows commitment computation overtaking
  communication — the paper's bottleneck finding.
"""

from _helpers import dummy_datasets, save_table

from repro.analysis import format_table
from repro.core import FLSession, ProtocolConfig
from repro.ml import SyntheticModel

NUM_TRAINERS = 4
MODEL_PARAMS = 8_000  # kept small: the commitments are computed for real
FIG3_SLOPE_S_PER_PARAM = 120e-6


def make_session(verifiable: bool, commit_seconds_per_param=None):
    config = ProtocolConfig(
        num_partitions=2,
        t_train=600.0,
        t_sync=1200.0,
        verifiable=verifiable,
        fractional_bits=16,
        commit_seconds_per_param=commit_seconds_per_param,
        update_mode="gradient",
        poll_interval=0.25,
    )
    return FLSession(
        config,
        lambda: SyntheticModel(MODEL_PARAMS),
        dummy_datasets(NUM_TRAINERS),
        num_ipfs_nodes=4,
        bandwidth_mbps=10.0,
    )


def test_verification_overhead(benchmark):
    outcome = {}

    def experiment():
        outcome["plain"] = make_session(verifiable=False).run_iteration()
        outcome["verified"] = make_session(verifiable=True).run_iteration()
        outcome["charged"] = make_session(
            verifiable=True,
            commit_seconds_per_param=FIG3_SLOPE_S_PER_PARAM,
        ).run_iteration()

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    plain, verified, charged = (
        outcome["plain"], outcome["verified"], outcome["charged"]
    )

    crypto_seconds = sum(verified.commit_seconds.values())
    rows = [
        ["plain", plain.end_to_end_delay, 0.0,
         len(plain.trainers_completed)],
        ["verifiable", verified.end_to_end_delay, crypto_seconds,
         len(verified.trainers_completed)],
        ["verifiable + cost model", charged.end_to_end_delay,
         sum(charged.commit_seconds.values()),
         len(charged.trainers_completed)],
    ]
    save_table("verification_overhead", format_table(
        ["mode", "end-to-end (sim s)", "commit wall-clock (s)",
         "trainers done"],
        rows,
        title=f"Verifiability overhead ({NUM_TRAINERS} trainers, "
              f"{MODEL_PARAMS}-param model, 2 partitions, 10 Mbps)",
    ))
    benchmark.extra_info["crypto_seconds"] = round(crypto_seconds, 4)

    # Everyone completes in all modes; real crypto work was performed.
    for metrics in (plain, verified, charged):
        assert len(metrics.trainers_completed) == NUM_TRAINERS
    assert crypto_seconds > 0
    assert not verified.verification_failures
    # Verifiability adds protocol latency (commitments on the wire,
    # accumulated-commitment queries, directory verification download).
    assert verified.end_to_end_delay >= plain.end_to_end_delay
    # With the Fig. 3 slope charged on the simulated clock, commitment
    # time dominates the iteration — the paper's bottleneck observation.
    assert charged.end_to_end_delay > 3 * plain.end_to_end_delay
    expected_commit_delay = FIG3_SLOPE_S_PER_PARAM * (MODEL_PARAMS / 2)
    assert (charged.end_to_end_delay - verified.end_to_end_delay
            > expected_commit_delay)
