"""Ablation: directory polling cadence.

Algorithm 1's trainers and aggregators discover CIDs by *polling* the
directory ("check the DS until you get the Cids").  The cadence trades
reactivity against directory load — one of the "possible bottlenecks"
the paper's Sec. V/VI discussion flags.  Sweep the poll interval and
measure both sides of the trade.
"""

from _helpers import dummy_datasets, save_table

from repro.analysis import Sweep, format_table
from repro.core import FLSession, ProtocolConfig
from repro.ml import SyntheticModel

POLL_INTERVALS = [0.1, 0.5, 2.0]
NUM_TRAINERS = 8
MODEL_PARAMS = 20_000


def run_with_interval(poll_interval: float) -> dict:
    config = ProtocolConfig(
        num_partitions=2,
        t_train=600.0,
        t_sync=1200.0,
        update_mode="gradient",
        poll_interval=poll_interval,
    )
    session = FLSession(
        config,
        lambda: SyntheticModel(MODEL_PARAMS),
        dummy_datasets(NUM_TRAINERS),
        num_ipfs_nodes=4,
        bandwidth_mbps=10.0,
    )
    metrics = session.run_iteration()
    return {
        "end_to_end": metrics.end_to_end_delay,
        "iteration": metrics.duration,
        "lookups": session.directory.lookup_count,
        "completed": len(metrics.trainers_completed),
    }


def test_poll_interval_tradeoff(benchmark):
    outcome = {}

    def experiment():
        outcome["results"] = Sweep("poll_interval", POLL_INTERVALS).run(
            run_with_interval
        )

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    results = outcome["results"]

    save_table("poll_interval", format_table(
        ["poll interval (s)", "end-to-end (s)", "iteration (s)",
         "directory lookups"],
        [[interval, row["end_to_end"], row["iteration"], row["lookups"]]
         for interval, row in results.rows],
        title=f"Polling cadence trade-off ({NUM_TRAINERS} trainers, "
              "2 partitions)",
    ))

    rows = results.values()
    assert all(row["completed"] == NUM_TRAINERS for row in rows)
    # Coarser polling -> slower rounds ...
    delays = [row["iteration"] for row in rows]
    assert delays == sorted(delays)
    assert delays[-1] > 1.5 * delays[0]
    # ... but far fewer directory queries.
    lookups = [row["lookups"] for row in rows]
    assert lookups == sorted(lookups, reverse=True)
    assert lookups[0] > 2 * lookups[-1]
