"""Figure 2 — total aggregation delay (top) and data received per
aggregator (bottom) vs the number of aggregators per partition |A_i|.

Paper setup: 16 trainers, 8 IPFS nodes, 4 partitions of 1.1 MB each, each
aggregator responsible for one partition, 20 Mbps links, merge-and-
download disabled, |A_i| in {1, 2, 4}.

Expected shape (asserted):
- gradient-aggregation delay decreases steeply with |A_i| (roughly
  halving per doubling: each aggregator downloads half the gradients),
- synchronization delay increases with |A_i|,
- total aggregation delay decreases, at a progressively smaller rate,
- bytes received per aggregator follow (|T_ij| + |A_i| - 1) * S.
"""

from _helpers import dummy_datasets, save_table

from repro.analysis import aggregator_download_bytes, format_table, \
    series_shape
from repro.core import FLSession, ProtocolConfig
from repro.ml import SyntheticModel

NUM_TRAINERS = 16
NUM_PARTITIONS = 4
PARTITION_PARAMS = 137_500  # ~1.1 MB of float64 each
AGGREGATORS_PER_PARTITION = [1, 2, 4]
BANDWIDTH_MBPS = 20.0


def run_sweep():
    rows = []
    for count in AGGREGATORS_PER_PARTITION:
        config = ProtocolConfig(
            num_partitions=NUM_PARTITIONS,
            aggregators_per_partition=count,
            t_train=600.0,
            t_sync=1200.0,
            takeover_grace=60.0,
            merge_and_download=False,
            update_mode="gradient",
            poll_interval=0.25,
        )
        session = FLSession(
            config,
            lambda: SyntheticModel(PARTITION_PARAMS * NUM_PARTITIONS),
            dummy_datasets(NUM_TRAINERS),
            num_ipfs_nodes=8,
            bandwidth_mbps=BANDWIDTH_MBPS,
        )
        metrics = session.run_iteration()
        partition_bytes = (PARTITION_PARAMS + 1) * 8
        predicted = aggregator_download_bytes(
            NUM_TRAINERS // count, count, partition_bytes
        )
        rows.append({
            "aggregators_per_partition": count,
            "grad_agg_delay_s": metrics.aggregation_delay,
            "sync_delay_s": metrics.sync_delay or 0.0,
            "total_agg_delay_s": metrics.total_aggregation_delay,
            "bytes_per_aggregator": metrics.mean_bytes_received,
            "predicted_bytes": predicted,
            "completed": len(metrics.trainers_completed),
        })
    return rows


def test_fig2_aggregators_sweep(benchmark):
    outcome = {}

    def experiment():
        outcome["rows"] = run_sweep()

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = outcome["rows"]

    table = format_table(
        ["|A_i|", "grad agg (s)", "sync (s)", "total (s)",
         "MB/aggregator", "predicted MB"],
        [[row["aggregators_per_partition"], row["grad_agg_delay_s"],
          row["sync_delay_s"], row["total_agg_delay_s"],
          row["bytes_per_aggregator"] / 1e6,
          row["predicted_bytes"] / 1e6]
         for row in rows],
        title="Fig. 2 — delays and data received vs aggregators per "
              "partition (16 trainers, 4x1.1MB partitions, 20 Mbps)",
    )
    save_table("fig2_aggregators", table)
    benchmark.extra_info.update({
        f"A{row['aggregators_per_partition']}_total_s":
            round(row["total_agg_delay_s"], 3)
        for row in rows
    })

    # All trainers finish in every configuration.
    assert all(row["completed"] == NUM_TRAINERS for row in rows)

    grad_delays = [row["grad_agg_delay_s"] for row in rows]
    sync_delays = [row["sync_delay_s"] for row in rows]
    totals = [row["total_agg_delay_s"] for row in rows]

    # Gradient aggregation decreases with |A_i|, steeply for the first
    # doubling; the second doubling saturates the fixed 8-node storage
    # uplink tier in our flow-level model, so only monotonicity is
    # asserted there (deviation documented in EXPERIMENTS.md).
    assert series_shape(grad_delays) == "decreasing"
    assert grad_delays[1] < 0.75 * grad_delays[0]
    # Synchronization overhead grows with |A_i|.
    assert series_shape(sync_delays) == "increasing"
    # Total delay: |A_i|=2 beats |A_i|=1; the |A_i|=4 point is flat-to-
    # slightly-worse under storage-tier saturation (within 15%).
    assert totals[1] < totals[0]
    assert totals[2] < 1.15 * totals[0]

    # Bytes received track the paper's (|T_ij| + |A_i| - 1) * S within
    # protocol overheads (directory polls, manifests).
    for row in rows:
        measured = row["bytes_per_aggregator"]
        predicted = row["predicted_bytes"]
        assert abs(measured - predicted) / predicted < 0.15, row
