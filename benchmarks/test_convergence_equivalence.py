"""Sec. V "Convergence and Accuracy" — the claim the paper states without
measurement: "both the model's convergence rate and final accuracy will
be exactly the same as that of traditional FL".

We measure it: the decentralized protocol, centralized FL, direct IPLS
and blockchain FL are run for several rounds from identical seeds; the
parameter trajectories must agree to numerical precision and the test
accuracies must be identical round by round.
"""

import numpy as np
from _helpers import save_table

from repro.analysis import format_table
from repro.baselines import BlockchainFLSession, CentralizedSession
from repro.core import FLSession, ProtocolConfig
from repro.ml import (
    LogisticRegression,
    TrainConfig,
    accuracy,
    make_classification,
    split_dirichlet,
    train_test_split,
)

ROUNDS = 4
NUM_TRAINERS = 8
NUM_FEATURES = 16


def build(kind: str, shards):
    config = ProtocolConfig(
        num_partitions=2,
        t_train=600.0,
        t_sync=1200.0,
        poll_interval=0.25,
    )
    config.train = TrainConfig(epochs=2, learning_rate=0.5, batch_size=32)
    factory = lambda: LogisticRegression(  # noqa: E731
        num_features=NUM_FEATURES, num_classes=2, seed=0
    )
    if kind == "ours":
        return FLSession(config, factory, shards, num_ipfs_nodes=4,
                         bandwidth_mbps=20.0)
    if kind == "centralized":
        return CentralizedSession(config, factory, shards,
                                  bandwidth_mbps=20.0)
    return BlockchainFLSession(config, factory, shards, num_miners=3,
                               bandwidth_mbps=20.0)


def test_convergence_equivalence(benchmark):
    data = make_classification(num_samples=1200, num_features=NUM_FEATURES,
                               class_separation=2.0, seed=4)
    train, test = train_test_split(data, seed=4)
    # Non-IID shards: the hard case for decentralized schemes the paper
    # contrasts against (gossip FL degrades here; ours must not).
    shards = split_dirichlet(train, NUM_TRAINERS, alpha=0.5, seed=4)

    outcome = {}

    def experiment():
        sessions = {kind: build(kind, shards)
                    for kind in ("ours", "centralized", "blockchain")}
        trajectory = {kind: [] for kind in sessions}
        for _ in range(ROUNDS):
            for kind, session in sessions.items():
                session.run_iteration()
                model = (session.model_of(0) if kind == "ours"
                         else list(session.models.values())[0])
                trajectory[kind].append((
                    session.consensus_params(), accuracy(model, test)
                ))
        outcome["trajectory"] = trajectory

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    trajectory = outcome["trajectory"]

    rows = []
    for round_index in range(ROUNDS):
        ours_params, ours_acc = trajectory["ours"][round_index]
        central_params, central_acc = trajectory["centralized"][round_index]
        bcfl_params, bcfl_acc = trajectory["blockchain"][round_index]
        rows.append([
            round_index,
            ours_acc, central_acc, bcfl_acc,
            float(np.max(np.abs(ours_params - central_params))),
            float(np.max(np.abs(ours_params - bcfl_params))),
        ])
    save_table("convergence_equivalence", format_table(
        ["round", "ours acc", "central acc", "bcfl acc",
         "|ours-central|_inf", "|ours-bcfl|_inf"],
        rows,
        title="Convergence equivalence (8 non-IID trainers, Dir(0.5))",
    ))
    benchmark.extra_info["final_accuracy"] = trajectory["ours"][-1][1]

    for round_index in range(ROUNDS):
        ours_params, ours_acc = trajectory["ours"][round_index]
        for other in ("centralized", "blockchain"):
            other_params, other_acc = trajectory[other][round_index]
            np.testing.assert_allclose(ours_params, other_params,
                                       atol=1e-12)
            assert ours_acc == other_acc
    # And the model actually learns.
    assert trajectory["ours"][-1][1] > 0.85
