"""Sec. III-E analytic model vs simulation: the provider-count optimum.

The paper derives tau(P) = S * (T/(dP) + P/b) with the optimum at
P* = sqrt(b*T/d).  This benchmark sweeps the simulator over provider
counts and checks that (a) the analytic tau curve is u-shaped with its
discrete argmin at round(P*), and (b) the simulated end-to-end delay's
argmin agrees with the analytic optimum.
"""

from _helpers import dummy_datasets, save_table

from repro.analysis import (
    aggregation_time_model,
    format_table,
    optimal_providers,
    series_shape,
)
from repro.core import FLSession, ProtocolConfig
from repro.ml import SyntheticModel
from repro.net import mbps, megabytes

NUM_TRAINERS = 16
PARTITION_PARAMS = 162_500  # ~1.3 MB
PROVIDER_COUNTS = [1, 2, 3, 4, 6, 8, 12, 16]
BANDWIDTH_MBPS = 10.0


def simulated_delay(providers: int,
                    aggregator_bandwidth_mbps=None) -> float:
    config = ProtocolConfig(
        num_partitions=1,
        t_train=3600.0,
        t_sync=7200.0,
        merge_and_download=True,
        providers_per_aggregator=providers,
        update_mode="gradient",
        poll_interval=0.25,
    )
    session = FLSession(
        config,
        lambda: SyntheticModel(PARTITION_PARAMS),
        dummy_datasets(NUM_TRAINERS),
        num_ipfs_nodes=max(PROVIDER_COUNTS),
        bandwidth_mbps=BANDWIDTH_MBPS,
        aggregator_bandwidth_mbps=aggregator_bandwidth_mbps,
    )
    metrics = session.run_iteration()
    return metrics.end_to_end_delay


def test_provider_optimum_matches_analysis(benchmark):
    bandwidth = mbps(BANDWIDTH_MBPS)
    partition_bytes = megabytes(1.3)
    outcome = {}

    def experiment():
        outcome["simulated"] = {
            providers: simulated_delay(providers)
            for providers in PROVIDER_COUNTS
        }
        # The asymmetric case: a 4x faster aggregator (b = 4d) moves the
        # analytic optimum to sqrt(4*16) = 8 providers.
        outcome["asymmetric"] = {
            providers: simulated_delay(providers,
                                       aggregator_bandwidth_mbps=40.0)
            for providers in (2, 4, 8, 12, 16)
        }

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    simulated = outcome["simulated"]
    analytic = {
        providers: aggregation_time_model(
            NUM_TRAINERS, partition_bytes, providers, bandwidth, bandwidth
        )
        for providers in PROVIDER_COUNTS
    }

    table = save_rows = [
        [providers, analytic[providers], simulated[providers]]
        for providers in PROVIDER_COUNTS
    ]
    save_table("provider_model", format_table(
        ["providers", "analytic tau (s)", "simulated end-to-end (s)"],
        save_rows,
        title="Sec. III-E model vs simulation (16 trainers, 1.3MB, "
              "10 Mbps)",
    ))
    benchmark.extra_info["p_star"] = optimal_providers(
        NUM_TRAINERS, node_bandwidth=bandwidth,
        aggregator_bandwidth=bandwidth,
    )

    # The analytic optimum is sqrt(16) = 4 at equal bandwidths.
    p_star = optimal_providers(NUM_TRAINERS, node_bandwidth=bandwidth,
                               aggregator_bandwidth=bandwidth)
    assert round(p_star) == 4

    analytic_argmin = min(analytic, key=analytic.get)
    simulated_argmin = min(simulated, key=simulated.get)
    assert analytic_argmin == 4
    assert simulated_argmin in (3, 4, 6)  # adjacent sweep points allowed

    # Both curves are u-shaped in the provider count.
    assert series_shape([analytic[p] for p in PROVIDER_COUNTS]) == "u-shaped"
    simulated_series = [simulated[p] for p in PROVIDER_COUNTS]
    assert series_shape(simulated_series) in ("u-shaped", "decreasing")
    # The extremes are worse than the optimum in simulation too.
    best = min(simulated_series)
    assert simulated[1] > 1.5 * best
    assert simulated[16] > 1.05 * best

    # Bandwidth dependence: with b = 4d the simulated optimum moves to
    # the analytic sqrt(b*T/d) = 8.
    asymmetric = outcome["asymmetric"]
    p_star_asym = optimal_providers(NUM_TRAINERS, node_bandwidth=bandwidth,
                                    aggregator_bandwidth=4 * bandwidth)
    assert round(p_star_asym) == 8
    assert min(asymmetric, key=asymmetric.get) == 8
