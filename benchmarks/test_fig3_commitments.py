"""Figure 3 — time to compute the SHA-256 hash and the Pedersen
commitment (secp256k1 and secp256r1) vs model size.

The paper sweeps the number of model parameters on a log scale and
observes: commitment time is linear in the parameter count, minutes-scale
for 5-10M-parameter models, and orders of magnitude above SHA-256; the
two curves behave almost identically.

We measure real multi-exponentiations (Pippenger) at sizes up to 20k
parameters and check linearity, then extrapolate the per-parameter slope
to 5M parameters and assert the paper's minutes-scale bottleneck claim.
"""

import time

import numpy as np
from _helpers import save_table

from repro.analysis import format_table
from repro.core import PartitionCommitter
from repro.crypto import sha256

SIZES = [1_000, 4_000, 16_000]
EXTRAPOLATION_PARAMS = 5_000_000  # "medium-sized models like MobileNetV1"


def measure_sha256(size: int, vector: np.ndarray) -> float:
    blob = vector.tobytes()
    started = time.perf_counter()
    sha256(blob)
    return time.perf_counter() - started


def measure_commit(size: int, curve: str, vector: np.ndarray) -> float:
    committer = PartitionCommitter(partition_len=size, curve=curve,
                                   fractional_bits=16)
    started = time.perf_counter()
    committer.encode_and_commit(vector)
    return time.perf_counter() - started


def run_sweep():
    rng = np.random.default_rng(0)
    rows = []
    for size in SIZES:
        vector = rng.normal(size=size)
        rows.append({
            "params": size,
            "sha256_s": measure_sha256(size, vector),
            "secp256k1_s": measure_commit(size, "secp256k1", vector),
            "secp256r1_s": measure_commit(size, "secp256r1", vector),
        })
    return rows


def test_fig3_commitment_cost(benchmark):
    outcome = {}

    def experiment():
        outcome["rows"] = run_sweep()

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = outcome["rows"]

    # Per-parameter slope from the largest measurement (most amortized).
    slope_k1 = rows[-1]["secp256k1_s"] / rows[-1]["params"]
    slope_r1 = rows[-1]["secp256r1_s"] / rows[-1]["params"]
    extrapolated_k1_min = slope_k1 * EXTRAPOLATION_PARAMS / 60.0
    extrapolated_r1_min = slope_r1 * EXTRAPOLATION_PARAMS / 60.0

    table_rows = [
        [row["params"], row["sha256_s"], row["secp256k1_s"],
         row["secp256r1_s"],
         row["secp256k1_s"] / max(row["sha256_s"], 1e-9)]
        for row in rows
    ]
    table_rows.append([
        EXTRAPOLATION_PARAMS, None,
        extrapolated_k1_min * 60.0, extrapolated_r1_min * 60.0, None,
    ])
    table = format_table(
        ["params", "sha256 (s)", "secp256k1 (s)", "secp256r1 (s)",
         "commit/hash ratio"],
        table_rows,
        title="Fig. 3 — commitment vs hash cost by model size "
              "(last row: linear extrapolation)",
    )
    save_table("fig3_commitments", table)
    benchmark.extra_info.update({
        "slope_us_per_param_k1": round(slope_k1 * 1e6, 3),
        "extrapolated_5M_minutes_k1": round(extrapolated_k1_min, 2),
        "extrapolated_5M_minutes_r1": round(extrapolated_r1_min, 2),
    })

    # Commitments are orders of magnitude above SHA-256 at every size.
    for row in rows:
        assert row["secp256k1_s"] > 100 * row["sha256_s"]
        assert row["secp256r1_s"] > 100 * row["sha256_s"]

    # Cost grows roughly linearly with size (within 2x of proportional —
    # Pippenger's window choice makes it mildly sublinear).
    ratio = rows[-1]["secp256k1_s"] / rows[0]["secp256k1_s"]
    size_ratio = rows[-1]["params"] / rows[0]["params"]
    assert size_ratio / 2.5 < ratio < size_ratio * 2.5

    # The two curves are within a small constant of each other.
    for row in rows:
        assert 0.3 < row["secp256k1_s"] / row["secp256r1_s"] < 3.0

    # The paper's bottleneck claim: minutes for a 5M-parameter model.
    # (Their Java testbed: ~4-9 minutes; any pure-Python slope lands
    # comfortably above one minute.)
    assert extrapolated_k1_min > 1.0
