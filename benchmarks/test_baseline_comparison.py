"""Sec. I architecture comparison: bytes moved and stored per iteration.

The paper motivates its design by the blockchain approach's costs
("miners have to store all updates into the blockchain, and those who
serve as aggregators have to download and aggregate every single
update") and the centralized server's trust/bottleneck role.  This
benchmark quantifies one training iteration across all four
architectures on identical workloads.
"""

from _helpers import dummy_datasets, save_table

from repro.analysis import format_table
from repro.baselines import (
    BlockchainFLSession,
    CentralizedSession,
    DirectIPLSSession,
)
from repro.core import FLSession, ProtocolConfig
from repro.ml import SyntheticModel

NUM_TRAINERS = 16
MODEL_PARAMS = 130_000  # ~1 MB model


def config(**overrides):
    defaults = dict(
        num_partitions=4,
        t_train=600.0,
        t_sync=1200.0,
        update_mode="gradient",
        poll_interval=0.25,
    )
    defaults.update(overrides)
    return ProtocolConfig(**defaults)


def factory():
    return SyntheticModel(MODEL_PARAMS)


def test_baseline_comparison(benchmark):
    outcome = {}

    def experiment():
        shards = dummy_datasets(NUM_TRAINERS)
        results = {}

        ours = FLSession(
            config(merge_and_download=True, providers_per_aggregator=4),
            factory, shards, num_ipfs_nodes=8, bandwidth_mbps=10.0,
        )
        metrics = ours.run_iteration()
        results["ours (merge)"] = {
            "delay": metrics.end_to_end_delay,
            "bytes": ours.testbed.network.bytes_delivered,
            "storage": sum(n.store.total_bytes for n in ours.nodes),
        }

        naive = FLSession(
            config(merge_and_download=False),
            factory, shards, num_ipfs_nodes=8, bandwidth_mbps=10.0,
        )
        metrics = naive.run_iteration()
        results["ours (naive)"] = {
            "delay": metrics.end_to_end_delay,
            "bytes": naive.testbed.network.bytes_delivered,
            "storage": sum(n.store.total_bytes for n in naive.nodes),
        }

        direct = DirectIPLSSession(config(), factory, shards,
                                   bandwidth_mbps=10.0)
        metrics = direct.run_iteration()
        results["IPLS (direct)"] = {
            "delay": metrics.end_to_end_delay,
            "bytes": direct.testbed.network.bytes_delivered,
            "storage": 0.0,
        }

        central = CentralizedSession(config(), factory, shards,
                                     bandwidth_mbps=10.0)
        metrics = central.run_iteration()
        results["centralized"] = {
            "delay": metrics.end_to_end_delay,
            "bytes": central.network.bytes_delivered,
            "storage": 0.0,
        }

        bcfl = BlockchainFLSession(config(), factory, shards,
                                   num_miners=4, bandwidth_mbps=10.0)
        metrics = bcfl.run_iteration()
        results["blockchain FL"] = {
            "delay": metrics.end_to_end_delay,
            "bytes": bcfl.network.bytes_delivered,
            "storage": bcfl.total_miner_storage(),
        }
        outcome["results"] = results

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    results = outcome["results"]

    save_table("baseline_comparison", format_table(
        ["architecture", "update delay (s)", "network MB", "storage MB"],
        [[name, row["delay"], row["bytes"] / 1e6, row["storage"] / 1e6]
         for name, row in results.items()],
        title="One iteration, 16 trainers, ~1MB model, 10 Mbps "
              "(storage = bytes resident after the round)",
    ))

    # The paper's qualitative claims:
    # blockchain FL replicates every update on every miner -> storage and
    # traffic far beyond ours.
    assert (results["blockchain FL"]["storage"]
            > 3 * results["ours (merge)"]["storage"])
    assert (results["blockchain FL"]["bytes"]
            > 1.5 * results["ours (merge)"]["bytes"])
    # Merge-and-download beats naive indirect on the update delay.
    assert (results["ours (merge)"]["delay"]
            < results["ours (naive)"]["delay"])
    # The centralized server serializes everything through one NIC; the
    # partitioned decentralized design is faster at equal bandwidth.
    assert (results["ours (merge)"]["delay"]
            < results["centralized"]["delay"])
