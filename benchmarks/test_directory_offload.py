"""Ablation (paper Sec. VI): minimizing the directory service's load.

Two measurements:

1. **Batch registration** — identical training rounds with per-partition
   registration vs one accumulated-digest message per trainer; compares
   the directory's message count and host bytes.
2. **Map snapshot offload** — resolving a 64-trainer partition map via
   per-poll directory lookups vs one IPFS snapshot fetch; compares bytes
   served by the directory host (which drop to a single CID handout).
"""

from _helpers import dummy_datasets, save_table

from repro.analysis import format_table
from repro.core import (
    Address,
    FLSession,
    GRADIENT,
    ProtocolConfig,
    SnapshotPublisher,
    SnapshotReader,
)
from repro.core.directory import DirectoryClient, DirectoryService
from repro.ipfs import DHT, IPFSClient, IPFSNode
from repro.ml import SyntheticModel
from repro.net import Network, Transport, mbps
from repro.sim import Simulator

NUM_TRAINERS = 16
NUM_PARTITIONS = 4
MODEL_PARAMS = 20_000


def run_session(batch: bool, processing_delay: float = 0.0):
    config = ProtocolConfig(
        num_partitions=NUM_PARTITIONS,
        t_train=600.0,
        t_sync=1200.0,
        update_mode="gradient",
        batch_registration=batch,
        poll_interval=0.25,
    )
    session = FLSession(
        config,
        lambda: SyntheticModel(MODEL_PARAMS),
        dummy_datasets(NUM_TRAINERS),
        num_ipfs_nodes=8,
        bandwidth_mbps=10.0,
        directory_processing_delay=processing_delay,
    )
    metrics = session.run_iteration()
    host = session.testbed.network.host("directory")
    return {
        "registrations": session.directory.register_count,
        "lookups": session.directory.lookup_count,
        "bytes_in": host.bytes_received,
        "bytes_out": host.bytes_sent,
        "end_to_end": metrics.end_to_end_delay,
    }


def run_snapshot_comparison():
    """Resolve a 64-row partition map with and without snapshot offload."""
    rows_count = 64
    sim = Simulator()
    network = Network(sim)
    names = ["directory", "ipfs-0", "seeder", "reader"]
    for name in names:
        network.add_host(name, up_bandwidth=mbps(50))
    transport = Transport(network)
    for name in names:
        transport.endpoint(name)
    dht = DHT(sim, lookup_delay=0.0)
    node = IPFSNode(sim, transport, dht, "ipfs-0")
    directory = DirectoryService(sim, transport, dht)
    seeder = DirectoryClient("seeder", transport)
    reader = DirectoryClient("reader", transport)
    publisher = SnapshotPublisher(
        directory, IPFSClient("directory", transport, dht), node="ipfs-0"
    )
    snapshot_reader = SnapshotReader(IPFSClient("reader", transport, dht))
    data_cid = node.store_object(b"gradient")
    outcome = {}

    def scenario():
        for index in range(rows_count):
            yield from seeder.register(
                Address(f"t{index}", 0, 0, GRADIENT), data_cid
            )
        host = network.host("directory")
        baseline_out = host.bytes_sent
        # Plain: ten polling clients each pull the full row list once.
        for _ in range(10):
            yield from reader.lookup(0, 0, GRADIENT)
        outcome["lookup_bytes"] = host.bytes_sent - baseline_out

        snapshot_cid = yield from publisher.seal(0, 0)
        baseline_out = host.bytes_sent
        # Offloaded: the directory would hand out only the snapshot CID
        # (64 bytes per query); rows come from the storage node.
        rows = yield from snapshot_reader.fetch(
            snapshot_cid, prefer_nodes=["ipfs-0"]
        )
        outcome["snapshot_directory_bytes"] = (
            host.bytes_sent - baseline_out + 10 * 64
        )
        outcome["rows"] = len(rows)

    proc = sim.process(scenario())
    sim.run_until(proc)
    return outcome


def test_directory_offload(benchmark):
    outcome = {}

    def experiment():
        outcome["plain"] = run_session(batch=False)
        outcome["batched"] = run_session(batch=True)
        # With serialized 20ms-per-request server work, the directory
        # becomes a queueing bottleneck; batching relieves it.
        outcome["plain_loaded"] = run_session(batch=False,
                                              processing_delay=0.02)
        outcome["batched_loaded"] = run_session(batch=True,
                                                processing_delay=0.02)
        outcome["snapshot"] = run_snapshot_comparison()

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    plain, batched, snapshot = (
        outcome["plain"], outcome["batched"], outcome["snapshot"]
    )

    save_table("directory_offload", format_table(
        ["mode", "register msgs", "lookups", "dir bytes in",
         "dir bytes out"],
        [
            ["per-partition", plain["registrations"], plain["lookups"],
             plain["bytes_in"], plain["bytes_out"]],
            ["batched", batched["registrations"], batched["lookups"],
             batched["bytes_in"], batched["bytes_out"]],
        ],
        title="Directory load: per-partition vs batched registration "
              f"({NUM_TRAINERS} trainers x {NUM_PARTITIONS} partitions)",
    ) + "\n\n" + format_table(
        ["map resolution", "directory bytes served"],
        [
            ["10 full lookups", snapshot["lookup_bytes"]],
            ["snapshot offload (10 CID handouts)",
             snapshot["snapshot_directory_bytes"]],
        ],
        title="Map snapshot offload (64-row partition map)",
    ))

    # Batching turns T x P gradient registrations into T messages.
    assert plain["registrations"] >= NUM_TRAINERS * NUM_PARTITIONS
    assert (batched["registrations"]
            <= NUM_TRAINERS + NUM_PARTITIONS + 4)
    # Snapshot offload slashes directory egress by an order of magnitude.
    assert (snapshot["snapshot_directory_bytes"]
            < snapshot["lookup_bytes"] / 10)
    assert snapshot["rows"] == 64

    # Under serialized server load, batching shortens the iteration.
    plain_loaded = outcome["plain_loaded"]
    batched_loaded = outcome["batched_loaded"]
    assert batched_loaded["end_to_end"] < plain_loaded["end_to_end"]
