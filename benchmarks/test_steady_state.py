"""Steady-state operation: multi-round storage behaviour with GC.

Sec. VI: "in our protocol both gradients and updates [are] only needed
for a short period of time".  This benchmark runs several rounds with and
without per-round garbage collection and shows that GC bounds the
storage-network footprint while training results are unchanged.
"""

import numpy as np
from _helpers import save_table

from repro.analysis import format_table
from repro.core import FLSession, ProtocolConfig
from repro.ml import LogisticRegression, make_classification, split_iid

ROUNDS = 5
NUM_TRAINERS = 8


def build_session():
    data = make_classification(num_samples=400, num_features=32,
                               class_separation=3.0, seed=2)
    shards = split_iid(data, NUM_TRAINERS, seed=2)
    config = ProtocolConfig(num_partitions=4, t_train=300.0,
                            t_sync=600.0)
    return FLSession(
        config,
        lambda: LogisticRegression(num_features=32, num_classes=2, seed=0),
        shards, num_ipfs_nodes=4, bandwidth_mbps=10.0,
    )


def test_steady_state_storage(benchmark):
    outcome = {}

    def experiment():
        unbounded = build_session()
        bounded = build_session()
        rows = []
        for round_index in range(ROUNDS):
            unbounded.run_iteration()
            bounded.run_iteration()
            bounded.collect_garbage(keep_iterations=1)
            rows.append([
                round_index,
                unbounded.storage_bytes / 1e3,
                bounded.storage_bytes / 1e3,
            ])
        outcome["rows"] = rows
        outcome["params_equal"] = bool(np.allclose(
            unbounded.consensus_params(), bounded.consensus_params(),
            atol=1e-12,
        ))

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = outcome["rows"]

    save_table("steady_state", format_table(
        ["round", "storage no-GC (kB)", "storage with GC (kB)"],
        rows,
        title=f"Storage footprint over {ROUNDS} rounds "
              f"({NUM_TRAINERS} trainers, 4 partitions)",
    ))

    # Without GC storage grows every round; with GC it plateaus.
    no_gc = [row[1] for row in rows]
    with_gc = [row[2] for row in rows]
    assert no_gc == sorted(no_gc) and no_gc[-1] > no_gc[0] * 3
    assert max(with_gc) <= with_gc[0] * 1.5
    assert with_gc[-1] < no_gc[-1] / 2
    # GC never changed the learning outcome.
    assert outcome["params_equal"]
