"""Sec. I motivation: purely decentralized (gossip) FL vs our protocol.

"Purely decentralized FL seems tempting ... However, it may not always
achieve the same performance in model accuracy and convergence as
centralized FL, and this highly depends on the nature of the dataset."

We quantify this on a strongly non-IID workload (Dirichlet alpha = 0.1):
gossip averaging with fanout 2 vs our protocol (which computes exact
FedAvg).  Expected shape: our accuracy dominates round for round, and
gossip never reaches model consensus (positive divergence) while our
trainers hold bit-identical models.
"""

import numpy as np
from _helpers import save_table

from repro.analysis import format_table
from repro.baselines.gossip import GossipFLSession
from repro.core import FLSession, ProtocolConfig
from repro.ml import (
    LogisticRegression,
    TrainConfig,
    accuracy,
    make_classification,
    split_dirichlet,
    train_test_split,
)

ROUNDS = 4
NUM_TRAINERS = 8
NUM_FEATURES = 12


def test_gossip_vs_protocol_non_iid(benchmark):
    data = make_classification(num_samples=1200, num_features=NUM_FEATURES,
                               num_classes=4, class_separation=2.0, seed=9)
    train, test = train_test_split(data, seed=9)
    shards = split_dirichlet(train, NUM_TRAINERS, alpha=0.1, seed=9)
    config = ProtocolConfig(num_partitions=2, t_train=600.0,
                            t_sync=1200.0)
    config.train = TrainConfig(epochs=2, learning_rate=0.5, batch_size=32)
    factory = lambda: LogisticRegression(  # noqa: E731
        num_features=NUM_FEATURES, num_classes=4, seed=0
    )
    outcome = {}

    def experiment():
        gossip = GossipFLSession(config, factory, shards, fanout=2, seed=1)
        ours = FLSession(config, factory, shards, num_ipfs_nodes=4)
        rows = []
        for round_index in range(ROUNDS):
            gossip.run_iteration()
            ours.run_iteration()
            gossip_accuracy = float(np.mean([
                accuracy(gossip.models[name], test)
                for name in gossip.trainer_names
            ]))
            rows.append([
                round_index,
                gossip_accuracy,
                accuracy(ours.model_of(0), test),
                gossip.model_divergence(),
            ])
        ours.consensus_params()  # ours: bit-identical models
        outcome["rows"] = rows

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = outcome["rows"]

    save_table("gossip_comparison", format_table(
        ["round", "gossip mean acc", "ours acc", "gossip divergence"],
        rows,
        title=f"Gossip (fanout 2) vs our protocol, {NUM_TRAINERS} "
              "trainers, Dirichlet(0.1) non-IID",
    ))

    for round_index, gossip_acc, ours_acc, divergence in rows:
        assert ours_acc >= gossip_acc  # FedAvg dominates round by round
        assert divergence > 0          # gossip never reaches consensus
    # The early-round gap is substantial on non-IID data.
    assert rows[0][2] - rows[0][1] > 0.1
