"""Observability overhead — the zero-overhead-when-unsubscribed contract.

Every emission site in the hot path guards event *construction* behind
``bus.wants(...)``, so a run with no subscribers pays one attribute
load and one membership check per site and never allocates an event.
This benchmark quantifies that on the paper's Fig. 1 configuration
(16 trainers, ~1.3 MB partition, merge-and-download): an unobserved run
(telemetry closed before the round) must stay within 5% of the fully
observed run's wall-clock.  Since the observed run does strictly more
work (event objects, dispatch, metric folding), this bounds the bus
machinery itself well below 5%.

The metrics layer rides the same bus, so its cost is budgeted here too:
a run with a :class:`~repro.obs.MetricsRegistry` *and* a quarter-second
:class:`~repro.obs.ResourceSampler` attached on top of telemetry must
stay within 10% of the bare (unobserved) run.  Likewise the audit
stack: a run with the :class:`~repro.obs.InvariantMonitors` and
:class:`~repro.obs.FlightRecorder` attached on top of telemetry (the
``python -m repro.cli audit`` configuration) gets the same 10% budget
and must, of course, find nothing on an honest run.  The anomaly
watchdog stacks on the audit wiring (the ``cli chaos --watch``
configuration): same 10% budget, and its detectors must stay silent on
the honest Fig. 1 run — a false positive here is a correctness failure,
not a perf one.
"""

import time

from _helpers import dummy_datasets, save_table

from repro.analysis import format_table
from repro.analysis.scale import ScaleScenario, run_scale_point
from repro.core import FLSession, ProtocolConfig
from repro.ml import SyntheticModel
from repro.obs import (
    AnomalyWatchdog,
    FlightRecorder,
    InvariantMonitors,
    MetricsRegistry,
    ResourceSampler,
)

NUM_TRAINERS = 16
PARTITION_PARAMS = 162_500  # ~1.3 MB of float64, as in Fig. 1
ROUNDS = 2
REPEATS = 7  # best-of; raised from 5 when the audit variant joined
MAX_OVERHEAD = 0.05
MAX_METRICS_OVERHEAD = 0.10
MAX_MONITORS_OVERHEAD = 0.10
SAMPLE_INTERVAL = 0.25

# -- cohort-scale budget (10^3 / 10^4 trainers) ----------------------------------
# The observed variant attaches the full bounded stack (registry,
# 5 sim-second resource sampler, 0.25 firehose sampling) on top of the
# default telemetry — the `cli scale --observe --event-sample-rate 0.25`
# configuration.  Peak telemetry memory comes from the deterministic
# obs memory model, so the byte budgets are exact-repeatable; only the
# wall-clock ratio is machine-dependent.
SCALE_POPULATIONS = (1_000, 10_000)
SCALE_REPEATS = 7
SCALE_ITERATIONS = 2  # longer runs damp scheduler jitter in the ratio
SCALE_EVENT_SAMPLE_RATE = 0.25
MAX_SCALE_OVERHEAD = 0.15
#: Peak modelled telemetry bytes per population (documented budget;
#: measured 344,576 / 801,600 for the 2-iteration scenario — the
#: committed BENCH_scale.json gates the exact values at 20%).
MAX_TELEMETRY_BYTES = {1_000: 512 * 1024, 10_000: 1024 * 1024}


def _make_session():
    config = ProtocolConfig(
        num_partitions=1,
        t_train=3600.0,
        t_sync=7200.0,
        update_mode="gradient",
        poll_interval=0.25,
        merge_and_download=True,
        providers_per_aggregator=4,
    )
    return FLSession(
        config,
        model_factory=lambda: SyntheticModel(PARTITION_PARAMS),
        datasets=dummy_datasets(NUM_TRAINERS),
        num_ipfs_nodes=8,
        bandwidth_mbps=10.0,
    )


def _one_run(observed: bool) -> float:
    """Wall-clock seconds for ROUNDS rounds of a fresh session."""
    session = _make_session()
    if not observed:
        session.telemetry.close()
        assert not session.sim.bus.active
    started = time.perf_counter()
    for _ in range(ROUNDS):
        metrics = session.run_iteration()
    elapsed = time.perf_counter() - started
    assert (metrics is not None) == observed
    return elapsed


def _one_metrics_run() -> float:
    """Wall-clock seconds with the full metrics stack attached:
    telemetry + MetricsRegistry (with its owned counters) + a
    quarter-second resource sampler."""
    session = _make_session()
    registry = MetricsRegistry(session.sim.bus)
    sampler = ResourceSampler.for_session(session, registry,
                                          interval=SAMPLE_INTERVAL)
    started = time.perf_counter()
    for _ in range(ROUNDS):
        session.run_iteration()
    elapsed = time.perf_counter() - started
    sampler.stop()
    registry.close()
    assert registry.histogram("net.transfer.duration").count > 0
    assert sampler.samples_taken > ROUNDS
    return elapsed


def _one_monitors_run() -> float:
    """Wall-clock seconds with the audit stack attached: telemetry +
    flight recorder + invariant monitors (the ``cli audit`` wiring)."""
    session = _make_session()
    recorder = FlightRecorder(session.sim.bus)
    monitors = InvariantMonitors(session.sim.bus)
    started = time.perf_counter()
    for _ in range(ROUNDS):
        session.run_iteration()
    elapsed = time.perf_counter() - started
    session.collect_garbage(keep_iterations=1)
    violations = monitors.finalize()
    recorder.close()
    assert violations == [], f"honest Fig. 1 run not clean: {violations}"
    assert recorder.incidents == []
    return elapsed


def _one_watchdog_run() -> float:
    """Wall-clock seconds with the chaos-watch stack attached:
    telemetry + flight recorder + invariant monitors + the anomaly
    watchdog (the ``cli chaos --watch`` wiring)."""
    session = _make_session()
    recorder = FlightRecorder(session.sim.bus)
    monitors = InvariantMonitors(session.sim.bus)
    watchdog = AnomalyWatchdog.for_session(session)
    started = time.perf_counter()
    for _ in range(ROUNDS):
        session.run_iteration()
    elapsed = time.perf_counter() - started
    watchdog.finalize()
    session.collect_garbage(keep_iterations=1)
    violations = monitors.finalize()
    recorder.close()
    assert violations == [], f"honest Fig. 1 run not clean: {violations}"
    assert watchdog.anomalies == [], (
        f"false positives on an honest run: {watchdog.summary()}")
    assert watchdog.ticks > 0
    assert recorder.incidents == []
    return elapsed


def test_unobserved_run_pays_no_instrumentation_tax():
    # Interleave the variants and compare best-of: per-run noise on
    # a shared machine dwarfs the effect under test, while the minimum
    # of each variant converges on its true cost.
    # Each ratio is additionally gated on its *cleanest pair*: the
    # variants of one repeat run back-to-back, so a load burst on a
    # shared machine contaminates at most the repeats it overlaps,
    # whereas min-of-each-variant compares walls measured minutes apart
    # under drifting load.
    observed_runs, unobserved_runs = [], []
    metrics_runs, monitors_runs, watchdog_runs = [], [], []
    for _ in range(REPEATS):
        observed_runs.append(_one_run(observed=True))
        unobserved_runs.append(_one_run(observed=False))
        metrics_runs.append(_one_metrics_run())
        monitors_runs.append(_one_monitors_run())
        watchdog_runs.append(_one_watchdog_run())
    observed = min(observed_runs)
    unobserved = min(unobserved_runs)
    with_metrics = min(metrics_runs)
    with_monitors = min(monitors_runs)
    with_watchdog = min(watchdog_runs)
    overhead = min(
        u / o for u, o in zip(unobserved_runs, observed_runs)) - 1.0
    metrics_overhead = min(
        m / u for m, u in zip(metrics_runs, unobserved_runs)) - 1.0
    monitors_overhead = min(
        m / u for m, u in zip(monitors_runs, unobserved_runs)) - 1.0
    watchdog_overhead = min(
        w / u for w, u in zip(watchdog_runs, unobserved_runs)) - 1.0
    save_table("obs_overhead", format_table(
        ["variant", "wall-clock (s)"],
        [
            ["observed (telemetry subscribed)", observed],
            ["unobserved (no subscribers)", unobserved],
            ["metrics (registry + 0.25 s sampler)", with_metrics],
            ["audit (monitors + flight recorder)", with_monitors],
            ["watch (audit + anomaly watchdog)", with_watchdog],
            ["bus overhead (unobserved vs observed)",
             f"{overhead * 100:+.1f}%"],
            ["metrics overhead (vs unobserved)",
             f"{metrics_overhead * 100:+.1f}%"],
            ["audit overhead (vs unobserved)",
             f"{monitors_overhead * 100:+.1f}%"],
            ["watch overhead (vs unobserved)",
             f"{watchdog_overhead * 100:+.1f}%"],
        ],
        title=f"{NUM_TRAINERS} trainers, {ROUNDS} rounds, Fig. 1 config",
    ))
    assert overhead <= MAX_OVERHEAD, (
        f"unobserved run {unobserved:.3f}s exceeds observed "
        f"{observed:.3f}s by more than {MAX_OVERHEAD:.0%}"
    )
    assert metrics_overhead <= MAX_METRICS_OVERHEAD, (
        f"metrics-attached run {with_metrics:.3f}s exceeds bare "
        f"{unobserved:.3f}s by more than {MAX_METRICS_OVERHEAD:.0%}"
    )
    assert monitors_overhead <= MAX_MONITORS_OVERHEAD, (
        f"audit-attached run {with_monitors:.3f}s exceeds bare "
        f"{unobserved:.3f}s by more than {MAX_MONITORS_OVERHEAD:.0%}"
    )
    assert watchdog_overhead <= MAX_MONITORS_OVERHEAD, (
        f"watchdog-attached run {with_watchdog:.3f}s exceeds bare "
        f"{unobserved:.3f}s by more than {MAX_MONITORS_OVERHEAD:.0%}"
    )


def test_observed_cohort_scale_stays_inside_the_budget():
    """The tentpole contract at cohort scale: a fully observed
    10^3/10^4-population run stays within MAX_SCALE_OVERHEAD of the
    bare run, and its peak modelled telemetry memory stays inside the
    documented per-population byte budget."""
    bare_scenario = ScaleScenario(iterations=SCALE_ITERATIONS)
    observed_scenario = ScaleScenario(
        iterations=SCALE_ITERATIONS, observed=True,
        event_sample_rate=SCALE_EVENT_SAMPLE_RATE)
    rows = []
    for population in SCALE_POPULATIONS:
        # Pair the variants back-to-back and gate on the *cleanest
        # pair's* ratio: a load burst contaminates at most the pairs it
        # overlaps, while min-of-each-side compares walls measured at
        # different moments under drifting load.
        bare_wall = observed_wall = best_ratio = float("inf")
        observed_point = None
        for _ in range(SCALE_REPEATS):
            bare = run_scale_point(population, bare_scenario)
            observed_point = run_scale_point(population, observed_scenario)
            ratio = observed_point.wall_seconds / bare.wall_seconds
            if ratio < best_ratio:
                best_ratio = ratio
                bare_wall = bare.wall_seconds
                observed_wall = observed_point.wall_seconds
        overhead = best_ratio - 1.0
        budget = MAX_TELEMETRY_BYTES[population]
        rows.append([population, round(bare_wall, 4),
                     round(observed_wall, 4), f"{overhead * 100:+.1f}%",
                     observed_point.telemetry_peak_bytes, budget,
                     observed_point.events_observed])
        assert observed_point.telemetry_peak_bytes > 0
        assert observed_point.telemetry_peak_bytes <= budget, (
            f"p{population}: peak telemetry "
            f"{observed_point.telemetry_peak_bytes} B exceeds the "
            f"documented budget {budget} B"
        )
        assert overhead <= MAX_SCALE_OVERHEAD, (
            f"p{population}: observed run {observed_wall:.3f}s exceeds "
            f"bare {bare_wall:.3f}s by more than {MAX_SCALE_OVERHEAD:.0%}"
        )
    save_table("obs_overhead_scale", format_table(
        ["population", "bare wall/iter (s)", "observed wall/iter (s)",
         "overhead", "telemetry peak (B)", "budget (B)", "events observed"],
        rows,
        title=("observed stack: registry + 5 s sampler + "
               f"{SCALE_EVENT_SAMPLE_RATE} firehose sampling"),
    ))


def test_overhead_benchmark(benchmark):
    """pytest-benchmark timing of the unobserved configuration."""
    def run():
        session = _make_session()
        session.telemetry.close()
        session.run(rounds=1)

    benchmark(run)
