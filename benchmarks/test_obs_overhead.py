"""Observability overhead — the zero-overhead-when-unsubscribed contract.

Every emission site in the hot path guards event *construction* behind
``bus.wants(...)``, so a run with no subscribers pays one attribute
load and one membership check per site and never allocates an event.
This benchmark quantifies that on the paper's Fig. 1 configuration
(16 trainers, ~1.3 MB partition, merge-and-download): an unobserved run
(telemetry closed before the round) must stay within 5% of the fully
observed run's wall-clock.  Since the observed run does strictly more
work (event objects, dispatch, metric folding), this bounds the bus
machinery itself well below 5%.

The metrics layer rides the same bus, so its cost is budgeted here too:
a run with a :class:`~repro.obs.MetricsRegistry` *and* a quarter-second
:class:`~repro.obs.ResourceSampler` attached on top of telemetry must
stay within 10% of the bare (unobserved) run.  Likewise the audit
stack: a run with the :class:`~repro.obs.InvariantMonitors` and
:class:`~repro.obs.FlightRecorder` attached on top of telemetry (the
``python -m repro.cli audit`` configuration) gets the same 10% budget
and must, of course, find nothing on an honest run.
"""

import time

from _helpers import dummy_datasets, save_table

from repro.analysis import format_table
from repro.core import FLSession, ProtocolConfig
from repro.ml import SyntheticModel
from repro.obs import (
    FlightRecorder,
    InvariantMonitors,
    MetricsRegistry,
    ResourceSampler,
)

NUM_TRAINERS = 16
PARTITION_PARAMS = 162_500  # ~1.3 MB of float64, as in Fig. 1
ROUNDS = 2
REPEATS = 7  # best-of; raised from 5 when the audit variant joined
MAX_OVERHEAD = 0.05
MAX_METRICS_OVERHEAD = 0.10
MAX_MONITORS_OVERHEAD = 0.10
SAMPLE_INTERVAL = 0.25


def _make_session():
    config = ProtocolConfig(
        num_partitions=1,
        t_train=3600.0,
        t_sync=7200.0,
        update_mode="gradient",
        poll_interval=0.25,
        merge_and_download=True,
        providers_per_aggregator=4,
    )
    return FLSession(
        config,
        model_factory=lambda: SyntheticModel(PARTITION_PARAMS),
        datasets=dummy_datasets(NUM_TRAINERS),
        num_ipfs_nodes=8,
        bandwidth_mbps=10.0,
    )


def _one_run(observed: bool) -> float:
    """Wall-clock seconds for ROUNDS rounds of a fresh session."""
    session = _make_session()
    if not observed:
        session.telemetry.close()
        assert not session.sim.bus.active
    started = time.perf_counter()
    for _ in range(ROUNDS):
        metrics = session.run_iteration()
    elapsed = time.perf_counter() - started
    assert (metrics is not None) == observed
    return elapsed


def _one_metrics_run() -> float:
    """Wall-clock seconds with the full metrics stack attached:
    telemetry + MetricsRegistry (with its owned counters) + a
    quarter-second resource sampler."""
    session = _make_session()
    registry = MetricsRegistry(session.sim.bus)
    sampler = ResourceSampler.for_session(session, registry,
                                          interval=SAMPLE_INTERVAL)
    started = time.perf_counter()
    for _ in range(ROUNDS):
        session.run_iteration()
    elapsed = time.perf_counter() - started
    sampler.stop()
    registry.close()
    assert registry.histogram("net.transfer.duration").count > 0
    assert sampler.samples_taken > ROUNDS
    return elapsed


def _one_monitors_run() -> float:
    """Wall-clock seconds with the audit stack attached: telemetry +
    flight recorder + invariant monitors (the ``cli audit`` wiring)."""
    session = _make_session()
    recorder = FlightRecorder(session.sim.bus)
    monitors = InvariantMonitors(session.sim.bus)
    started = time.perf_counter()
    for _ in range(ROUNDS):
        session.run_iteration()
    elapsed = time.perf_counter() - started
    session.collect_garbage(keep_iterations=1)
    violations = monitors.finalize()
    recorder.close()
    assert violations == [], f"honest Fig. 1 run not clean: {violations}"
    assert recorder.incidents == []
    return elapsed


def test_unobserved_run_pays_no_instrumentation_tax():
    # Interleave the variants and compare best-of: per-run noise on
    # a shared machine dwarfs the effect under test, while the minimum
    # of each variant converges on its true cost.
    observed_runs, unobserved_runs = [], []
    metrics_runs, monitors_runs = [], []
    for _ in range(REPEATS):
        observed_runs.append(_one_run(observed=True))
        unobserved_runs.append(_one_run(observed=False))
        metrics_runs.append(_one_metrics_run())
        monitors_runs.append(_one_monitors_run())
    observed = min(observed_runs)
    unobserved = min(unobserved_runs)
    with_metrics = min(metrics_runs)
    with_monitors = min(monitors_runs)
    overhead = unobserved / observed - 1.0
    metrics_overhead = with_metrics / unobserved - 1.0
    monitors_overhead = with_monitors / unobserved - 1.0
    save_table("obs_overhead", format_table(
        ["variant", "wall-clock (s)"],
        [
            ["observed (telemetry subscribed)", observed],
            ["unobserved (no subscribers)", unobserved],
            ["metrics (registry + 0.25 s sampler)", with_metrics],
            ["audit (monitors + flight recorder)", with_monitors],
            ["bus overhead (unobserved vs observed)",
             f"{overhead * 100:+.1f}%"],
            ["metrics overhead (vs unobserved)",
             f"{metrics_overhead * 100:+.1f}%"],
            ["audit overhead (vs unobserved)",
             f"{monitors_overhead * 100:+.1f}%"],
        ],
        title=f"{NUM_TRAINERS} trainers, {ROUNDS} rounds, Fig. 1 config",
    ))
    assert unobserved <= observed * (1.0 + MAX_OVERHEAD), (
        f"unobserved run {unobserved:.3f}s exceeds observed "
        f"{observed:.3f}s by more than {MAX_OVERHEAD:.0%}"
    )
    assert with_metrics <= unobserved * (1.0 + MAX_METRICS_OVERHEAD), (
        f"metrics-attached run {with_metrics:.3f}s exceeds bare "
        f"{unobserved:.3f}s by more than {MAX_METRICS_OVERHEAD:.0%}"
    )
    assert with_monitors <= unobserved * (1.0 + MAX_MONITORS_OVERHEAD), (
        f"audit-attached run {with_monitors:.3f}s exceeds bare "
        f"{unobserved:.3f}s by more than {MAX_MONITORS_OVERHEAD:.0%}"
    )


def test_overhead_benchmark(benchmark):
    """pytest-benchmark timing of the unobserved configuration."""
    def run():
        session = _make_session()
        session.telemetry.close()
        session.run(rounds=1)

    benchmark(run)
