"""Scalability sweeps: per-trainer (4-32) and population (10^2-10^5).

Not a paper figure, but the question a deployer asks first.  The paper's
architecture argument predicts: with the model partitioned over a fixed
aggregator set, per-aggregator download volume grows linearly in the
trainer count (D = (|T_ij| + |A_i| - 1)·S), so the collection window
grows linearly — while the *directory* handles O(trainers × partitions)
metadata messages, which is why Sec. VI worries about its load.

Two sweeps:

- ``test_scalability_in_trainers``: every trainer simulated exactly,
  4-32 participants — the historical per-trainer trajectory.
- ``test_scalability_in_population``: 10^2-10^5 total trainers via the
  cohort abstraction (16 exact + 16 statistical cohorts, see
  docs/SCALING.md).  Asserts the load metrics still scale linearly in
  the *population* while the wall-clock per simulated iteration stays
  roughly flat — the O(sample + cohorts) claim.  Writes the same
  manifest shape as the committed ``benchmarks/BENCH_scale.json``
  regression baseline.
"""

import os

from _helpers import RESULTS_DIR, dummy_datasets, save_table

from repro.analysis import (
    ScaleScenario,
    Sweep,
    format_scale_table,
    format_table,
    run_scale_sweep,
    scale_manifest,
)
from repro.core import FLSession, ProtocolConfig
from repro.ml import SyntheticModel

TRAINER_COUNTS = [4, 8, 16, 32]
POPULATIONS = [100, 1_000, 10_000, 100_000]
MODEL_PARAMS = 40_000  # small partitions: metadata effects visible
NUM_PARTITIONS = 4


def run_with_trainers(num_trainers: int) -> dict:
    config = ProtocolConfig(
        num_partitions=NUM_PARTITIONS,
        t_train=600.0,
        t_sync=1200.0,
        update_mode="gradient",
        poll_interval=0.25,
    )
    session = FLSession(
        config,
        lambda: SyntheticModel(MODEL_PARAMS),
        dummy_datasets(num_trainers),
        num_ipfs_nodes=8,
        bandwidth_mbps=10.0,
    )
    metrics = session.run_iteration()
    return {
        "collection": metrics.collection_time,
        "end_to_end": metrics.end_to_end_delay,
        "registrations": session.directory.register_count,
        "lookups": session.directory.lookup_count,
        "completed": len(metrics.trainers_completed),
        "trainers": num_trainers,
    }


def test_scalability_in_trainers(benchmark):
    outcome = {}

    def experiment():
        outcome["results"] = Sweep("trainers", TRAINER_COUNTS).run(
            run_with_trainers
        )

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    results = outcome["results"]

    save_table("scalability", format_table(
        ["trainers", "collection (s)", "end-to-end (s)",
         "dir registers", "dir lookups"],
        [[row["trainers"], row["collection"], row["end_to_end"],
          row["registrations"], row["lookups"]]
         for row in results.values()],
        title=f"Scalability in trainer count ({NUM_PARTITIONS} partitions, "
              "8 IPFS nodes, 10 Mbps)",
    ))

    rows = results.values()
    # Every configuration completes fully.
    assert all(row["completed"] == row["trainers"] for row in rows)
    # Collection grows with trainers (the linear D formula) ...
    collections = [row["collection"] for row in rows]
    assert collections == sorted(collections)
    # ... roughly linearly: 8x the trainers within ~16x the window
    # (slack for polling quantization at the small end).
    assert collections[-1] < collections[0] * 16
    # Directory registrations grow linearly: trainers x partitions + the
    # per-partition updates.
    for row in rows:
        expected = row["trainers"] * NUM_PARTITIONS + NUM_PARTITIONS
        assert row["registrations"] == expected


def test_scalability_in_population(benchmark):
    scenario = ScaleScenario()
    outcome = {}

    def experiment():
        outcome["points"] = run_scale_sweep(POPULATIONS, scenario)

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    points = outcome["points"]

    save_table("scalability_population", format_scale_table(
        points,
        title=f"Scaling in population ({scenario.exact_trainers} exact "
              f"trainers, {scenario.cohorts} cohorts, "
              f"{scenario.bandwidth_mbps:g} Mbps)",
    ))
    scale_manifest(points, scenario).write(
        os.path.join(RESULTS_DIR, "BENCH_scale.json")
    )

    by_population = {point.population: point for point in points}
    assert sorted(by_population) == sorted(POPULATIONS)
    for point in points:
        # Directory load is linear in the *population*: every modeled
        # trainer registers and looks up each partition, plus the
        # per-partition update registrations — the Sec. VI load the
        # cohorts exist to preserve.
        expected = point.population * scenario.num_partitions
        assert point.registrations == expected + scenario.num_partitions
        assert point.lookups >= expected
        # Every cohort's full round load landed, and no wakeup fired
        # against a dead allocation epoch.
        assert point.cohorts_completed == scenario.cohorts
        assert point.stale_wakeups == 0
    # The O(sample + cohorts) claim: 1000x the population must not cost
    # anywhere near 1000x the wall-clock.  Generous slack (25x) keeps
    # the gate meaningful without CI-timing flakiness; the committed
    # BENCH_scale.json tracks the tight trajectory.
    assert by_population[100_000].wall_seconds \
        < max(by_population[100].wall_seconds, 0.05) * 25
