"""Scalability sweep: iteration delay and directory load vs trainer count.

Not a paper figure, but the question a deployer asks first.  The paper's
architecture argument predicts: with the model partitioned over a fixed
aggregator set, per-aggregator download volume grows linearly in the
trainer count (D = (|T_ij| + |A_i| - 1)·S), so the collection window
grows linearly — while the *directory* handles O(trainers × partitions)
metadata messages, which is why Sec. VI worries about its load.
"""

from _helpers import dummy_datasets, save_table

from repro.analysis import Sweep, format_table
from repro.core import FLSession, ProtocolConfig
from repro.ml import SyntheticModel

TRAINER_COUNTS = [4, 8, 16, 32]
MODEL_PARAMS = 40_000  # small partitions: metadata effects visible
NUM_PARTITIONS = 4


def run_with_trainers(num_trainers: int) -> dict:
    config = ProtocolConfig(
        num_partitions=NUM_PARTITIONS,
        t_train=600.0,
        t_sync=1200.0,
        update_mode="gradient",
        poll_interval=0.25,
    )
    session = FLSession(
        config,
        lambda: SyntheticModel(MODEL_PARAMS),
        dummy_datasets(num_trainers),
        num_ipfs_nodes=8,
        bandwidth_mbps=10.0,
    )
    metrics = session.run_iteration()
    return {
        "collection": metrics.collection_time,
        "end_to_end": metrics.end_to_end_delay,
        "registrations": session.directory.register_count,
        "lookups": session.directory.lookup_count,
        "completed": len(metrics.trainers_completed),
        "trainers": num_trainers,
    }


def test_scalability_in_trainers(benchmark):
    outcome = {}

    def experiment():
        outcome["results"] = Sweep("trainers", TRAINER_COUNTS).run(
            run_with_trainers
        )

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    results = outcome["results"]

    save_table("scalability", format_table(
        ["trainers", "collection (s)", "end-to-end (s)",
         "dir registers", "dir lookups"],
        [[row["trainers"], row["collection"], row["end_to_end"],
          row["registrations"], row["lookups"]]
         for row in results.values()],
        title=f"Scalability in trainer count ({NUM_PARTITIONS} partitions, "
              "8 IPFS nodes, 10 Mbps)",
    ))

    rows = results.values()
    # Every configuration completes fully.
    assert all(row["completed"] == row["trainers"] for row in rows)
    # Collection grows with trainers (the linear D formula) ...
    collections = [row["collection"] for row in rows]
    assert collections == sorted(collections)
    # ... roughly linearly: 8x the trainers within ~16x the window
    # (slack for polling quantization at the small end).
    assert collections[-1] < collections[0] * 16
    # Directory registrations grow linearly: trainers x partitions + the
    # per-partition updates.
    for row in rows:
        expected = row["trainers"] * NUM_PARTITIONS + NUM_PARTITIONS
        assert row["registrations"] == expected
