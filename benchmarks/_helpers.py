"""Shared benchmark utilities.

Each benchmark regenerates one of the paper's figures: it runs the
simulated experiment once under pytest-benchmark timing, prints the
figure's rows as a table, writes the same table under
``benchmarks/results/`` and asserts the *shape* of the measured series
(who wins, where the optimum falls) — absolute numbers are testbed-
dependent and are not asserted.
"""

import os

import numpy as np
import pytest

from repro.ml import Dataset

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def dummy_datasets(count: int):
    """Placeholder shards for delay experiments (no real learning).

    Each shard carries a distinct marker value so SyntheticModel
    gradients differ per trainer (distinct CIDs on the storage network).
    """
    return [
        Dataset(np.full((1, 1), float(index + 1)), np.zeros(1))
        for index in range(count)
    ]


def save_table(name: str, table: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, name + ".txt"), "w") as handle:
        handle.write(table + "\n")
    print("\n" + table)


@pytest.fixture
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR
