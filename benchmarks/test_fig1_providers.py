"""Figure 1 — aggregation (top) and uploading (bottom) delays vs the
number of IPFS providers.

Paper setup: 16 trainers, partition size 1.3 MB, one aggregator per
partition, 10 Mbps everywhere, merge-and-download enabled, providers
|P_ij| in {1, 2, 4, 8, 16}; plus the "8 (naive)" indirect-without-merge
bar and the "8 (direct)" original-IPLS bar.

Expected shape (asserted):
- upload delay strictly decreasing in providers,
- aggregation delay (first gradient CID write -> all aggregated)
  increasing in providers,
- end-to-end optimum at sqrt(16) = 4 providers,
- direct < naive indirect; merge-and-download closes most of that gap.
"""

from _helpers import dummy_datasets, save_table

from repro.analysis import format_table, series_shape
from repro.baselines import DirectIPLSSession
from repro.core import FLSession, ProtocolConfig
from repro.ml import SyntheticModel

NUM_TRAINERS = 16
PARTITION_PARAMS = 162_500  # ~1.3 MB of float64 (the paper's 1.3MB)
PROVIDER_COUNTS = [1, 2, 4, 8, 16]
BANDWIDTH_MBPS = 10.0


def _config(**overrides):
    defaults = dict(
        num_partitions=1,
        t_train=600.0,
        t_sync=1200.0,
        update_mode="gradient",
        poll_interval=0.25,
    )
    defaults.update(overrides)
    return ProtocolConfig(**defaults)


def _model_factory():
    return SyntheticModel(PARTITION_PARAMS)


def run_provider_sweep():
    rows = []
    for providers in PROVIDER_COUNTS:
        session = FLSession(
            _config(merge_and_download=True,
                    providers_per_aggregator=providers),
            _model_factory,
            dummy_datasets(NUM_TRAINERS),
            num_ipfs_nodes=max(PROVIDER_COUNTS),
            bandwidth_mbps=BANDWIDTH_MBPS,
        )
        metrics = session.run_iteration()
        rows.append({
            "providers": providers,
            "aggregation_delay_s": metrics.aggregation_delay,
            "upload_delay_s": metrics.mean_upload_delay,
            "end_to_end_s": metrics.end_to_end_delay,
            "collection_s": metrics.collection_time,
        })
    return rows


def run_naive_indirect():
    session = FLSession(
        _config(merge_and_download=False),
        _model_factory,
        dummy_datasets(NUM_TRAINERS),
        num_ipfs_nodes=8,
        bandwidth_mbps=BANDWIDTH_MBPS,
    )
    metrics = session.run_iteration()
    return {
        "providers": "8 (naive)",
        "aggregation_delay_s": metrics.aggregation_delay,
        "upload_delay_s": metrics.mean_upload_delay,
        "end_to_end_s": metrics.end_to_end_delay,
        "collection_s": metrics.collection_time,
    }


def run_direct():
    session = DirectIPLSSession(
        _config(),
        _model_factory,
        dummy_datasets(NUM_TRAINERS),
        bandwidth_mbps=BANDWIDTH_MBPS,
    )
    metrics = session.run_iteration()
    return {
        "providers": "8 (direct)",
        "aggregation_delay_s": metrics.aggregation_delay,
        "upload_delay_s": metrics.mean_upload_delay,
        "end_to_end_s": metrics.end_to_end_delay,
        "collection_s": metrics.collection_time,
    }


def test_fig1_provider_sweep(benchmark):
    outcome = {}

    def experiment():
        outcome["sweep"] = run_provider_sweep()
        outcome["naive"] = run_naive_indirect()
        outcome["direct"] = run_direct()

    benchmark.pedantic(experiment, rounds=1, iterations=1)
    sweep, naive, direct = (
        outcome["sweep"], outcome["naive"], outcome["direct"]
    )

    all_rows = sweep + [naive, direct]
    table = format_table(
        ["providers", "agg delay (s)", "upload delay (s)",
         "collection (s)", "end-to-end (s)"],
        [[row["providers"], row["aggregation_delay_s"],
          row["upload_delay_s"], row["collection_s"],
          row["end_to_end_s"]]
         for row in all_rows],
        title="Fig. 1 — delays vs number of IPFS providers "
              "(16 trainers, 1.3MB partition, 10 Mbps)",
    )
    save_table("fig1_providers", table)
    benchmark.extra_info.update({
        row["providers"]: round(row["end_to_end_s"], 3) for row in sweep
    })

    uploads = [row["upload_delay_s"] for row in sweep]
    aggregations = [row["aggregation_delay_s"] for row in sweep]
    end_to_end = [row["end_to_end_s"] for row in sweep]

    # Shape assertions (the paper's stated findings).
    assert series_shape(uploads) == "decreasing"
    assert series_shape(aggregations) == "increasing"
    best = PROVIDER_COUNTS[end_to_end.index(min(end_to_end))]
    assert best == 4, f"optimum at {best}, expected sqrt(16)=4"
    # Indirect without merge collects gradients markedly slower than the
    # direct-communication IPLS it relaxes ...
    assert naive["collection_s"] > 1.1 * direct["collection_s"]
    # ... and merge-and-download recovers (here: beats) direct efficiency,
    # the paper's "essential mechanism" claim.
    best_merge_collection = min(row["collection_s"] for row in sweep)
    assert best_merge_collection < naive["collection_s"] / 1.5
    assert best_merge_collection <= 1.2 * direct["collection_s"]
